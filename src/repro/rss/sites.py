"""Per-letter anycast site catalogs.

The deployment plan encodes the paper's Table 4: for every letter and
continent, how many *global* and *local* sites exist.  (The per-region
numbers are authoritative here; the worldwide sums differ from the paper's
Table 1 by a couple of sites for a/d/e.root — the paper's own tables carry
the same inconsistency, see EXPERIMENTS.md.)

Sites are placed deterministically in catalog cities of their continent;
multiple sites may share a metro, as in the real RSS.  Site identities
follow the operators' conventions (§4.2): most letters publish mappable
instance identifiers, while {a,c,j,e}.root only expose IATA metro codes —
and some j.root identifiers are not mappable at all (the paper could not
map 75 j.root identifiers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geo.cities import City, HUB_CITIES, cities_in
from repro.geo.continents import Continent
from repro.util.rng import RngFactory

#: Letters whose published identities are IATA metro codes only (§4.2 fn 2).
IATA_ONLY_LETTERS = frozenset({"a", "c", "j", "e"})

#: Fraction of j.root sites whose identifiers do not map to the published
#: catalog (75 of the paper's 135 unmapped identifiers came from j.root).
UNMAPPED_SITE_FRACTION: Dict[str, float] = {"j": 0.30, "d": 0.05, "k": 0.05}

#: (global, local) site counts per letter per continent — paper Table 4.
SITE_PLAN: Dict[str, Dict[Continent, Tuple[int, int]]] = {
    "a": {
        Continent.ASIA: (6, 2), Continent.EUROPE: (12, 7),
        Continent.NORTH_AMERICA: (13, 14),
    },
    "b": {
        Continent.ASIA: (1, 0), Continent.EUROPE: (1, 0),
        Continent.NORTH_AMERICA: (3, 0), Continent.SOUTH_AMERICA: (1, 0),
    },
    "c": {
        Continent.ASIA: (2, 0), Continent.EUROPE: (4, 0),
        Continent.NORTH_AMERICA: (5, 0), Continent.SOUTH_AMERICA: (1, 0),
    },
    "d": {
        Continent.AFRICA: (0, 42), Continent.ASIA: (2, 39),
        Continent.EUROPE: (9, 39), Continent.NORTH_AMERICA: (12, 49),
        Continent.SOUTH_AMERICA: (0, 12), Continent.OCEANIA: (0, 4),
    },
    "e": {
        Continent.AFRICA: (0, 43), Continent.ASIA: (8, 34),
        Continent.EUROPE: (33, 22), Continent.NORTH_AMERICA: (45, 30),
        Continent.SOUTH_AMERICA: (5, 13), Continent.OCEANIA: (6, 4),
    },
    "f": {
        Continent.AFRICA: (3, 25), Continent.ASIA: (13, 84),
        Continent.EUROPE: (46, 26), Continent.NORTH_AMERICA: (54, 34),
        Continent.SOUTH_AMERICA: (4, 40), Continent.OCEANIA: (9, 7),
    },
    "g": {
        Continent.ASIA: (1, 0), Continent.EUROPE: (2, 0),
        Continent.NORTH_AMERICA: (3, 0),
    },
    "h": {
        Continent.AFRICA: (1, 0), Continent.ASIA: (3, 0),
        Continent.EUROPE: (2, 0), Continent.NORTH_AMERICA: (4, 0),
        Continent.SOUTH_AMERICA: (1, 0), Continent.OCEANIA: (1, 0),
    },
    "i": {
        Continent.AFRICA: (3, 0), Continent.ASIA: (24, 0),
        Continent.EUROPE: (25, 0), Continent.NORTH_AMERICA: (16, 0),
        Continent.SOUTH_AMERICA: (10, 0), Continent.OCEANIA: (3, 0),
    },
    "j": {
        Continent.AFRICA: (0, 8), Continent.ASIA: (16, 11),
        Continent.EUROPE: (18, 34), Continent.NORTH_AMERICA: (20, 24),
        Continent.SOUTH_AMERICA: (4, 6), Continent.OCEANIA: (3, 2),
    },
    "k": {
        Continent.AFRICA: (2, 0), Continent.ASIA: (34, 9),
        Continent.EUROPE: (44, 2), Continent.NORTH_AMERICA: (17, 0),
        Continent.SOUTH_AMERICA: (6, 0), Continent.OCEANIA: (2, 0),
    },
    "l": {
        Continent.AFRICA: (11, 0), Continent.ASIA: (25, 0),
        Continent.EUROPE: (33, 0), Continent.NORTH_AMERICA: (22, 0),
        Continent.SOUTH_AMERICA: (23, 0), Continent.OCEANIA: (18, 0),
    },
    "m": {
        Continent.ASIA: (5, 7), Continent.EUROPE: (1, 0),
        Continent.NORTH_AMERICA: (1, 0), Continent.OCEANIA: (0, 2),
    },
}


@dataclass(frozen=True)
class Site:
    """One anycast site of one letter."""

    letter: str
    index: int
    city: City
    is_global: bool
    published: bool  # listed on root-servers.org (mappable identity)

    def __post_init__(self) -> None:
        # Hot-path strings (probed millions of times per campaign) are
        # computed once; frozen dataclass, hence object.__setattr__.
        object.__setattr__(self, "key", f"{self.letter}-{self.index:03d}")
        iata = self.city.iata.lower()
        if self.letter in IATA_ONLY_LETTERS:
            identity = f"nnn1-{iata}.{self.letter}.root-servers.org"
        else:
            scope = "g" if self.is_global else "l"
            identity = f"{self.letter}{self.index:03d}.{iata}-{scope}.root-servers.org"
        object.__setattr__(self, "_identity", identity)

    @property
    def continent(self) -> Continent:
        return self.city.continent

    def identity(self) -> str:
        """The CHAOS ``hostname.bind`` / ``id.server`` answer.

        {a,c,j,e}.root expose only the IATA metro code (multiple nodes in
        one metro are indistinguishable); other letters expose a per-site
        instance identifier.
        """
        return self._identity


class SiteCatalog:
    """All sites of all letters plus identity-mapping helpers."""

    def __init__(self, sites: Iterable[Site]) -> None:
        self.sites: List[Site] = list(sites)
        self._by_letter: Dict[str, List[Site]] = {}
        for site in self.sites:
            self._by_letter.setdefault(site.letter, []).append(site)
        self._identity_map: Dict[str, Site] = {}
        for site in self.sites:
            if site.published:
                self._identity_map.setdefault(site.identity(), site)

    def of_letter(self, letter: str) -> List[Site]:
        """Sites of one letter."""
        return list(self._by_letter.get(letter, []))

    def global_sites(self, letter: str) -> List[Site]:
        return [s for s in self.of_letter(letter) if s.is_global]

    def local_sites(self, letter: str) -> List[Site]:
        return [s for s in self.of_letter(letter) if not s.is_global]

    def map_identity(self, identity: str) -> Optional[Site]:
        """The coverage analysis' identity -> site matching (may fail,
        reproducing the paper's 135 unmapped identifiers)."""
        return self._identity_map.get(identity)

    def __len__(self) -> int:
        return len(self.sites)


def build_site_catalog(
    rng_factory: RngFactory,
    plan: Optional[Dict[str, Dict[Continent, Tuple[int, int]]]] = None,
) -> SiteCatalog:
    """Instantiate a site plan into concrete, deterministically-placed
    sites.  *plan* defaults to the paper's Table-4 :data:`SITE_PLAN`; a
    scenario's world layer may pass a scaled plan (same letters, scaled
    per-continent counts).  Placement is a pure function of
    ``(plan, rng_factory)``: each letter draws from its own named
    stream, so the same plan always yields the same catalog.
    """
    site_plan = SITE_PLAN if plan is None else plan
    sites: List[Site] = []
    for letter in sorted(site_plan):
        rng = rng_factory.stream(f"sites.{letter}")
        unmapped_fraction = UNMAPPED_SITE_FRACTION.get(letter, 0.0)
        index = 0
        for continent in Continent:
            letter_plan = site_plan[letter].get(continent)
            if letter_plan is None:
                continue
            n_global, n_local = letter_plan
            pool = cities_in(continent)
            if not pool:
                raise RuntimeError(f"no cities on {continent} for {letter}.root")
            # Operators deploy preferentially where interconnection is
            # dense: hub cities appear several times in the draw pool, so
            # co-location concentrates at the big exchanges (paper §5).
            weighted = []
            for c in pool:
                weighted.extend([c] * (3 if c.iata in HUB_CITIES else 1))
            order = list(weighted)
            rng.shuffle(order)
            for slot in range(n_global + n_local):
                city = order[slot % len(order)]
                published = rng.random() >= unmapped_fraction
                sites.append(
                    Site(
                        letter=letter,
                        index=index,
                        city=city,
                        is_global=slot < n_global,
                        published=published,
                    )
                )
                index += 1
    return SiteCatalog(sites)
