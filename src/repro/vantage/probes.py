"""The prober: executes the Appendix F measurement suite.

Per measurement round, each VP probes every root service address (14 IPv4
+ 14 IPv6, b.root counted twice) over the routing fabric:

* catchment selection (every round — feeds site stability, Fig. 3),
* CHAOS identity (every round — feeds coverage, Tables 1/4),
* RTT + geographic distances (sampled — Figs. 5/6/14/15),
* traceroute second-to-last hop (sampled — Fig. 4),
* AXFR + validation context (sampled, and always when a fault fires —
  Table 2).

The dig-level message codec is exercised end-to-end by
:meth:`Prober.probe_full_fidelity`, which tests and examples use on small
configurations; campaign runs use the sampled fast path, which produces
identical analysis-level records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dns.constants import RRClass, RRType
from repro.dns.edns import add_edns
from repro.dns.message import Message
from repro.dns.name import Name, ROOT_NAME
from repro.faults.bitflip import flip_bit_in_zone
from repro.faults.plan import FaultPlan
from repro.geo.cities import city
from repro.geo.coords import haversine_km
from repro.netsim.latency import route_rtt_ms
from repro.netsim.mix import mix64, mix_float
from repro.netsim.routing import RouteSelector
from repro.netsim.topology import NetworkFabric
from repro.rss.operators import ServiceAddress
from repro.rss.server import RootServerDeployment
from repro.util.timeutil import Timestamp
from repro.vantage.collector import CampaignCollector, TransferObservation
from repro.vantage.node import VantagePoint
from repro.vantage.scheduler import MeasurementSchedule

#: Probability the traceroute's second-to-last hop went unanswered.
STLH_MISSING_PROB = 0.03

#: Queries the Appendix F script sends per service address per round.
QUERIES_PER_ADDRESS = 47


@dataclass
class SamplingPolicy:
    """How densely the expensive observables are recorded."""

    rtt_every: int = 4
    traceroute_every: int = 8
    axfr_every: int = 16
    clean_transfer_keep_one_in: int = 2000

    def __post_init__(self) -> None:
        for name in ("rtt_every", "traceroute_every", "axfr_every"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")


class Prober:
    """Runs the measurement campaign against the simulated RSS."""

    def __init__(
        self,
        fabric: NetworkFabric,
        selector: RouteSelector,
        deployments: Dict[str, RootServerDeployment],
        fault_plan: FaultPlan,
        collector: CampaignCollector,
        sampling: Optional[SamplingPolicy] = None,
    ) -> None:
        self.fabric = fabric
        self.selector = selector
        self.deployments = deployments
        self.fault_plan = fault_plan
        self.collector = collector
        self.sampling = sampling or SamplingPolicy()
        self._closest_global_cache: Dict[Tuple[str, str], float] = {}
        self._stale_frozen: Dict[str, bool] = {}

    def reset(self) -> None:
        """Clear campaign-scoped fault tracking.

        ``_stale_frozen`` mirrors the distributor's freeze state; when a
        cached world is reused across runs the distributor is reset via
        ``reset_faults()``, and this must be cleared alongside it or the
        next campaign skips its freeze/unfreeze transitions.
        """
        self._stale_frozen.clear()

    # -- helpers -------------------------------------------------------------------

    def _closest_global_km(self, city_iata: str, letter: str) -> float:
        key = (city_iata, letter)
        if key not in self._closest_global_cache:
            origin = city(city_iata).location
            sites = self.fabric.global_sites(letter)
            self._closest_global_cache[key] = min(
                haversine_km(origin, s.city.location) for s in sites
            )
        return self._closest_global_cache[key]

    def _apply_stale_events(self, ts: Timestamp) -> None:
        """Freeze/unfreeze sites according to the fault plan's windows."""
        for event in self.fault_plan.stale_sites:
            frozen = self._stale_frozen.get(event.site_key, False)
            if event.active(ts) and not frozen:
                self.deployments[event.letter].freeze_site(
                    event.site_key, event.freeze_from
                )
                self._stale_frozen[event.site_key] = True
            elif not event.active(ts) and frozen:
                self.deployments[event.letter].unfreeze_site(event.site_key)
                self._stale_frozen[event.site_key] = False

    # -- campaign ------------------------------------------------------------------

    def run_campaign(
        self,
        vps: List[VantagePoint],
        schedule: MeasurementSchedule,
    ) -> CampaignCollector:
        """Run the whole campaign; returns the (shared) collector."""
        for round_no, ts in enumerate(schedule.instants()):
            self._apply_stale_events(ts)
            for vp in vps:
                self.run_round(vp, round_no, ts)
            self.collector.rounds_processed += 1
        return self.collector

    def run_round(self, vp: VantagePoint, round_no: int, ts: Timestamp) -> None:
        """One VP's measurement round across all service addresses."""
        sampling = self.sampling
        collector = self.collector
        phase = vp.vp_id  # de-synchronise sampling across VPs
        do_rtt = (round_no + phase) % sampling.rtt_every == 0
        do_traceroute = (round_no + phase) % sampling.traceroute_every == 0
        do_axfr = (round_no + phase) % sampling.axfr_every == 0

        for addr_idx, sa in enumerate(collector.addresses):
            route = self.selector.select(
                vp.attachment, vp.vp_id, sa.letter, sa.family, sa.address, round_no
            )
            collector.note_site(vp.vp_id, addr_idx, route.site.key)
            collector.note_identity(sa.letter, route.site.identity(), vp.vp_id, addr_idx)
            collector.queries_simulated += QUERIES_PER_ADDRESS

            if do_rtt:
                request_key = mix64(vp.vp_id, addr_idx, round_no)
                rtt = route_rtt_ms(route, vp.last_mile_ms, request_key)
                collector.add_probe_sample(
                    vp_id=vp.vp_id,
                    ts=ts,
                    addr_idx=addr_idx,
                    site_key=route.site.key,
                    rtt_ms=rtt,
                    direct_km=route.direct_km,
                    closest_global_km=self._closest_global_km(
                        vp.attachment.city.iata, sa.letter
                    ),
                    via_peer=route.via != "transit",
                    transit_asn=0 if route.transit is None else route.transit.asn,
                )

            if do_traceroute:
                missing = (
                    mix_float(vp.vp_id, addr_idx, round_no, 13) < STLH_MISSING_PROB
                )
                collector.add_traceroute(
                    vp_id=vp.vp_id,
                    ts=ts,
                    addr_idx=addr_idx,
                    second_to_last_hop=None if missing else route.second_to_last_hop,
                )

            bitflip = self.fault_plan.bitflip_for(vp.vp_id, ts, sa.address)
            if do_axfr or bitflip is not None:
                self._do_transfer(vp, ts, addr_idx, sa, route.site.key, bitflip)

    def _do_transfer(
        self,
        vp: VantagePoint,
        ts: Timestamp,
        addr_idx: int,
        sa: ServiceAddress,
        site_key: str,
        bitflip,
    ) -> None:
        collector = self.collector
        deployment = self.deployments[sa.letter]
        result = deployment.serve_axfr(site_key, ts)
        zone = result.zone
        fault = ""
        fault_detail = ""
        if bitflip is not None:
            zone, report = flip_bit_in_zone(zone, bitflip, ts)
            fault = "bitflip"
            fault_detail = report.description
        stale = deployment.distributor.is_frozen(site_key)
        if stale and not fault:
            fault = "stale"
            fault_detail = f"site {site_key} frozen"
        clock_offset = self.fault_plan.clocks.offset_for(vp.vp_id, ts)
        clean = not fault and clock_offset == 0
        collector.count_transfer(clean)

        interesting = bool(fault) or clock_offset != 0
        keep_clean_sample = (
            mix_float(vp.vp_id, addr_idx, ts, 29)
            < 1.0 / self.sampling.clean_transfer_keep_one_in
        )
        if interesting or keep_clean_sample:
            collector.add_transfer_observation(
                TransferObservation(
                    vp_id=vp.vp_id,
                    true_ts=ts,
                    observed_ts=ts + clock_offset,
                    address=sa,
                    serial=zone.serial,
                    zone=zone,
                    fault=fault,
                    fault_detail=fault_detail,
                )
            )

    # -- full-fidelity path -----------------------------------------------------------

    def probe_full_fidelity(
        self, vp: VantagePoint, sa: ServiceAddress, round_no: int, ts: Timestamp
    ) -> Dict[str, Message]:
        """Issue the actual Appendix F query set as wire messages.

        Exercises the DNS codec and server answer logic end-to-end;
        returns the parsed responses keyed by query mnemonic.
        """
        route = self.selector.select(
            vp.attachment, vp.vp_id, sa.letter, sa.family, sa.address, round_no
        )
        deployment = self.deployments[sa.letter]
        site_key = route.site.key
        responses: Dict[str, Message] = {}

        def ask(
            tag: str,
            qname: str,
            qtype: RRType,
            qclass: RRClass = RRClass.IN,
            dnssec: bool = False,
        ) -> None:
            query = Message.make_query(
                Name.from_text(qname), qtype, qclass, msg_id=mix64(vp.vp_id, round_no) & 0xFFFF
            )
            if dnssec:
                add_edns(query, dnssec_ok=True)  # dig +dnssec
            wire = query.to_wire()  # round-trip the codec like a real probe
            answer = deployment.answer(site_key, Message.from_wire(wire), ts)
            responses[tag] = Message.from_wire(answer.to_wire())

        # The Appendix F script runs the record queries with +dnssec and
        # the CHAOS identity queries without.
        ask("NS .", ".", RRType.NS, dnssec=True)
        ask("ZONEMD .", ".", RRType.ZONEMD, dnssec=True)
        ask("NS root-servers.net", "root-servers.net.", RRType.NS, dnssec=True)
        for chaos in ("hostname.bind", "id.server", "version.bind", "version.server"):
            ask(f"CH TXT {chaos}", f"{chaos}.", RRType.TXT, RRClass.CH)
        for letter in "abcdefghijklm":
            target = f"{letter}.root-servers.net."
            ask(f"A {target}", target, RRType.A, dnssec=True)
            ask(f"AAAA {target}", target, RRType.AAAA, dnssec=True)
            ask(f"TXT {target}", target, RRType.TXT, dnssec=True)
        return responses
