"""Vantage points and the active measurement campaign.

Models the NLNOG-RING-like measurement platform: a VP population matched
to the paper's Table 3 regional distribution, the Figure 2 measurement
timeline (30-minute base interval, 15-minute windows around the ZONEMD
and b.root events), and a prober executing the Appendix F suite against
the simulated root server system.
"""

from repro.vantage.node import VantagePoint
from repro.vantage.ring import RingConfig, build_ring, REGION_PLAN
from repro.vantage.scheduler import MeasurementSchedule, CAMPAIGN_START, CAMPAIGN_END
from repro.vantage.collector import (
    CampaignCollector,
    ProbeSample,
    TransferObservation,
    TracerouteSample,
)
from repro.vantage.probes import Prober, SamplingPolicy
from repro.vantage.export import export_dataset, load_dataset
from repro.vantage.atlas import AtlasPlatform

__all__ = [
    "SamplingPolicy",
    "export_dataset",
    "load_dataset",
    "AtlasPlatform",
    "VantagePoint",
    "RingConfig",
    "build_ring",
    "REGION_PLAN",
    "MeasurementSchedule",
    "CAMPAIGN_START",
    "CAMPAIGN_END",
    "CampaignCollector",
    "ProbeSample",
    "TransferObservation",
    "TracerouteSample",
    "Prober",
]
