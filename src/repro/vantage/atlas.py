"""A RIPE-Atlas-built-ins measurement platform (paper Appendix E).

The paper explains why it could not use RIPE Atlas: the built-in root
measurements only run SOA (every 1800 s), ``hostname.bind`` (240 s),
``id.server`` (1800 s) and version queries (43200 s) — no AXFR, no
A/AAAA for the root addresses, no old/new b.root distinction.  This
module simulates a campaign restricted to exactly those built-ins, so
the difference in scientific reach (which analyses survive) can be
measured rather than argued — see the corresponding ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.netsim.routing import RouteSelector
from repro.rss.operators import ServiceAddress
from repro.util.timeutil import MINUTE, Timestamp
from repro.vantage.collector import CampaignCollector
from repro.vantage.node import VantagePoint

#: The built-in measurement intervals (seconds), from the paper's
#: Appendix E / atlas.ripe.net docs.
BUILTIN_INTERVALS: Dict[str, int] = {
    "soa": 1800,
    "hostname.bind": 240,
    "id.server": 1800,
    "version.bind": 43200,
    "version.server": 43200,
}


@dataclass
class AtlasCampaignResult:
    """What an Atlas-built-ins campaign yields."""

    collector: CampaignCollector
    queries: int

    @property
    def has_transfers(self) -> bool:
        """Atlas built-ins never AXFR — RQ3 is out of reach."""
        return self.collector.transfer_total > 0

    def distinguishes_b_generations(self) -> bool:
        """Old/new b.root addresses are not separately measured."""
        counts = self.collector.change_counts()
        generations = {
            self.collector.addresses[addr_idx].generation
            for _vp, addr_idx in counts
            if self.collector.addresses[addr_idx].letter == "b"
        }
        return {"old", "new"} <= generations


class AtlasPlatform:
    """Runs the built-in suite only (identity + SOA; no AXFR, no
    per-generation b.root probing)."""

    def __init__(self, selector: RouteSelector) -> None:
        self.selector = selector

    def run(
        self,
        vps: List[VantagePoint],
        addresses: List[ServiceAddress],
        start: Timestamp,
        end: Timestamp,
        interval_scale: float = 1.0,
    ) -> AtlasCampaignResult:
        """Simulate the built-ins over [start, end).

        Only *current-generation* addresses are measured (the built-ins
        target the published NS set), and only identity/SOA-class
        observables are collected.
        """
        collector = CampaignCollector()
        queries = 0
        identity_interval = max(
            MINUTE, int(BUILTIN_INTERVALS["hostname.bind"] * interval_scale)
        )
        measured = [
            (idx, sa)
            for idx, sa in enumerate(collector.addresses)
            if sa.generation != "old"
        ]
        round_no = 0
        ts = start
        while ts < end:
            for vp in vps:
                for addr_idx, sa in measured:
                    route = self.selector.select(
                        vp.attachment, vp.vp_id, sa.letter, sa.family,
                        sa.address, round_no,
                    )
                    collector.note_site(vp.vp_id, addr_idx, route.site.key)
                    collector.note_identity(sa.letter, route.site.identity())
                    # hostname.bind + the slower built-ins amortised.
                    queries += 2
            collector.rounds_processed += 1
            round_no += 1
            ts += identity_interval
        collector.queries_simulated = queries
        return AtlasCampaignResult(collector=collector, queries=queries)
