"""The epoch-compiled campaign engine.

The scalar :meth:`~repro.vantage.probes.Prober.run_campaign` walks every
(round, VP, address) cell: tens of millions of ``RouteSelector.select``
calls, interner lookups and per-call hash mixes.  This engine exploits
the structure of the workload instead:

* **Routes are piecewise constant.**  Each (VP, address) pair's campaign
  is compiled into a handful of ``(round_start, round_end, route)``
  epochs (:mod:`repro.netsim.epochs`); site, identity and stability
  bookkeeping then costs one update per *epoch*, not per round.
* **Sampling is arithmetic.**  The ``(round + vp) % every == 0`` masks
  select arithmetic progressions of rounds, so probe and traceroute rows
  are produced as whole numpy blocks per pair — epoch-constant columns
  are gathers through the round→epoch index, and jitter/loss uniforms
  come from the array mixer (:func:`repro.netsim.mix.mix64_array`),
  which is bit-identical to the scalar mixer — and enter the collector
  through its batch-append APIs.
* **Almost no transfer is recorded.**  The scalar path runs a full AXFR
  for every sampled transfer and then throws nearly all of them away
  (``clean_transfer_keep_one_in``).  Faults and clock skew are pure
  functions of (VP, site, timestamp), so clean/faulty *counts* are
  computed from window masks alone and zones are only served for the
  observations that are actually kept.

Output is **byte-identical** to the scalar prober — same summary, same
interner contents in the same order, same identity dict insertion order,
same columns, same transfer observations — which
tests/vantage/test_epoch_engine.py asserts against the scalar path and
the sharded merge path.

Like the scalar scan (and the sharded merge, which sorts rows by
``(ts, vp_id)``), row ordering assumes the VP list is ascending in
``vp_id`` — true for every ring the builder produces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.faults.bitflip import flip_bit_in_zone
from repro.geo.coords import RTT_MS_PER_KM
from repro.netsim.epochs import compile_pair_epochs
from repro.netsim.latency import JITTER, PER_HOP_MS
from repro.netsim.mix import mix64_array, mix64_prefix, mix_float_array
from repro.vantage.collector import CampaignCollector, TransferObservation
from repro.vantage.node import VantagePoint
from repro.vantage.probes import (
    Prober,
    QUERIES_PER_ADDRESS,
    STLH_MISSING_PROB,
)
from repro.vantage.scheduler import MeasurementSchedule
from repro.zone.distribution import ZoneDistributor


def _sampled_rounds(vp_id: int, every: int, n_rounds: int) -> np.ndarray:
    """Rounds where ``(round + vp_id) % every == 0``, ascending."""
    return np.arange((-vp_id) % every, n_rounds, every, dtype=np.int64)


class _PairPlan:
    """One (VP, address) pair's compiled campaign."""

    __slots__ = ("vp", "addr_idx", "sa", "epochs", "routes", "starts")

    def __init__(self, vp: VantagePoint, addr_idx: int, sa, epochs, routes) -> None:
        self.vp = vp
        self.addr_idx = addr_idx
        self.sa = sa
        self.epochs = epochs  # [(start, end, candidate_index)]
        self.routes = routes  # candidate Route list
        self.starts = np.fromiter(
            (e[0] for e in epochs), dtype=np.int64, count=len(epochs)
        )

    def epoch_of(self, rounds: np.ndarray) -> np.ndarray:
        """Epoch index covering each (ascending) round number."""
        return np.searchsorted(self.starts, rounds, side="right") - 1


def run_epoch_campaign(
    prober: Prober,
    vps: List[VantagePoint],
    schedule: MeasurementSchedule,
) -> CampaignCollector:
    """Run the campaign via epoch compilation; returns the collector.

    Drop-in replacement for ``prober.run_campaign(vps, schedule)`` with
    byte-identical collector output.  Unlike the scalar path it advances
    no churn state and never mutates the distributor's freeze state, so
    it composes freely with in-process sharding.
    """
    collector = prober.collector
    selector = prober.selector
    sampling = prober.sampling

    ts_list = schedule.rounds()
    n_rounds = len(ts_list)
    ts_arr = np.asarray(ts_list, dtype=np.int64)

    # ---- pass 1: compile epochs; rebuild scan-order bookkeeping ----------------

    pairs: List[_PairPlan] = []
    # site/identity first occurrences, keyed exactly like the scalar
    # collector's order keys: (round, vp_id, addr_idx)
    site_first: Dict[str, Tuple[int, int, int]] = {}
    ident_first: Dict[Tuple[str, str], Tuple[int, int, int]] = {}
    ident_count: Dict[Tuple[str, str], int] = {}

    for vp in vps:
        for addr_idx, sa in enumerate(collector.addresses):
            routes = selector.candidates(vp.attachment, sa.letter, sa.family)
            epochs = compile_pair_epochs(
                selector.churn,
                vp.vp_id,
                sa.address,
                sa.letter,
                sa.family,
                n_rounds,
                len(routes),
            )
            pairs.append(_PairPlan(vp, addr_idx, sa, epochs, routes))
            for start, end, index in epochs:
                route = routes[index]
                key = (start, vp.vp_id, addr_idx)
                site_key = route.site.key
                if site_key not in site_first or key < site_first[site_key]:
                    site_first[site_key] = key
                ident_key = (sa.letter, route.site.identity())
                if ident_key not in ident_first or key < ident_first[ident_key]:
                    ident_first[ident_key] = key
                ident_count[ident_key] = ident_count.get(ident_key, 0) + (end - start)

    for site_key in sorted(site_first, key=site_first.__getitem__):
        collector.sites.intern(site_key, site_first[site_key])

    for letter, identity in sorted(ident_first, key=ident_first.__getitem__):
        collector.identities.setdefault(letter, {})[identity] = ident_count[
            (letter, identity)
        ]
        collector._identity_order[(letter, identity)] = ident_first[(letter, identity)]

    # Stability: every pair is created in round 0, so the scalar insertion
    # order is the pass-1 scan order; changes = epoch boundaries (candidate
    # lists are site-deduplicated, so every boundary is a site change).
    site_index = collector.sites._index
    if n_rounds > 0:
        for pair in pairs:
            last_site = pair.routes[pair.epochs[-1][2]].site.key
            collector._stability[(pair.vp.vp_id, pair.addr_idx)] = [
                site_index[last_site],
                len(pair.epochs) - 1,
                n_rounds,
            ]

    collector.queries_simulated += n_rounds * len(pairs) * QUERIES_PER_ADDRESS
    collector.rounds_processed += n_rounds

    # ---- pass 2a: traceroute sampling (fixes the hop interner order) -----------

    tr_state: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    hop_first: Dict[str, Tuple[int, int, int]] = {}
    for pair in pairs:
        r_tr = _sampled_rounds(pair.vp.vp_id, sampling.traceroute_every, n_rounds)
        if not len(r_tr):
            tr_state.append((r_tr, r_tr, r_tr))
            continue
        pf = mix64_prefix(pair.vp.vp_id, pair.addr_idx)
        missing = mix_float_array(pf, r_tr, 13) < STLH_MISSING_PROB
        eidx = pair.epoch_of(r_tr)
        tr_state.append((r_tr, missing, eidx))
        answered = ~missing
        # first answered sampled round of each epoch that has one
        first_rows = np.unique(eidx[answered], return_index=True)[1]
        answered_rounds = r_tr[answered]
        answered_eidx = eidx[answered]
        for row in first_rows:
            hop = pair.routes[pair.epochs[int(answered_eidx[row])][2]].second_to_last_hop
            key = (int(answered_rounds[row]), pair.vp.vp_id, pair.addr_idx)
            if hop not in hop_first or key < hop_first[hop]:
                hop_first[hop] = key
    for hop in sorted(hop_first, key=hop_first.__getitem__):
        collector.hops.intern(hop, hop_first[hop])
    hop_index = collector.hops._index

    # ---- pass 2b: columnar row production ---------------------------------------

    p_cols: Dict[str, List[np.ndarray]] = {
        name: [] for name in ("round", "vp", "addr", "site", "rtt",
                              "direct_km", "closest_km", "peer", "transit")
    }
    t_cols: Dict[str, List[np.ndarray]] = {
        name: [] for name in ("round", "vp", "addr", "hop")
    }

    for pair, (r_tr, missing, eidx_tr) in zip(pairs, tr_state):
        vp = pair.vp
        pf = mix64_prefix(vp.vp_id, pair.addr_idx)
        n_epochs = len(pair.epochs)

        # per-epoch route constants
        site_e = np.empty(n_epochs, dtype=np.int64)
        hop_e = np.empty(n_epochs, dtype=np.int64)
        base_e = np.empty(n_epochs, dtype=np.float64)
        skpfx_e = np.empty(n_epochs, dtype=np.uint64)
        direct_e = np.empty(n_epochs, dtype=np.float64)
        peer_e = np.empty(n_epochs, dtype=bool)
        transit_e = np.empty(n_epochs, dtype=np.int64)
        for i, (_start, _end, index) in enumerate(pair.epochs):
            route = pair.routes[index]
            site_e[i] = site_index[route.site.key]
            # a hop whose every sampled round was lost is absent from the
            # interner; those rows are forced to -1 below anyway
            hop_e[i] = hop_index.get(route.second_to_last_hop, -1)
            # identical op order to netsim.latency.route_rtt_ms
            base_e[i] = route.path_km * RTT_MS_PER_KM + (
                PER_HOP_MS * route.hop_count + vp.last_mile_ms + route.extra_ms
            )
            skpfx_e[i] = mix64_prefix(route.stable_key)
            direct_e[i] = route.direct_km
            peer_e[i] = route.via != "transit"
            transit_e[i] = 0 if route.transit is None else route.transit.asn

        # probe rows
        r_rtt = _sampled_rounds(vp.vp_id, sampling.rtt_every, n_rounds)
        if len(r_rtt):
            closest = prober._closest_global_km(vp.attachment.city.iata, pair.sa.letter)
            eidx = pair.epoch_of(r_rtt)
            u = mix_float_array(skpfx_e[eidx], mix64_array(pf, r_rtt))
            n = len(r_rtt)
            p_cols["round"].append(r_rtt)
            p_cols["vp"].append(np.full(n, vp.vp_id, dtype=np.int64))
            p_cols["addr"].append(np.full(n, pair.addr_idx, dtype=np.int64))
            p_cols["site"].append(site_e[eidx])
            p_cols["rtt"].append(base_e[eidx] * (1.0 - JITTER + u * 4.0 * JITTER))
            p_cols["direct_km"].append(direct_e[eidx])
            p_cols["closest_km"].append(np.full(n, closest, dtype=np.float64))
            p_cols["peer"].append(peer_e[eidx])
            p_cols["transit"].append(transit_e[eidx])

        # traceroute rows
        if len(r_tr):
            hop_col = hop_e[eidx_tr]
            hop_col[missing] = -1
            t_cols["round"].append(r_tr)
            t_cols["vp"].append(np.full(len(r_tr), vp.vp_id, dtype=np.int64))
            t_cols["addr"].append(np.full(len(r_tr), pair.addr_idx, dtype=np.int64))
            t_cols["hop"].append(hop_col)

    # Serial scan order is (round, vp, addr); per-pair blocks are already
    # round-ascending, so a stable lexsort restores the exact row order.
    if p_cols["round"]:
        cat = {name: np.concatenate(blocks) for name, blocks in p_cols.items()}
        order = np.lexsort((cat["addr"], cat["vp"], cat["round"]))
        collector.add_probe_block(
            vp=cat["vp"][order],
            ts=ts_arr[cat["round"][order]],
            addr=cat["addr"][order],
            site=cat["site"][order],
            rtt=cat["rtt"][order],
            direct_km=cat["direct_km"][order],
            closest_km=cat["closest_km"][order],
            peer=cat["peer"][order],
            transit=cat["transit"][order],
        )
    if t_cols["round"]:
        cat = {name: np.concatenate(blocks) for name, blocks in t_cols.items()}
        order = np.lexsort((cat["addr"], cat["vp"], cat["round"]))
        collector.add_traceroute_block(
            vp=cat["vp"][order],
            ts=ts_arr[cat["round"][order]],
            addr=cat["addr"][order],
            hop=cat["hop"][order],
        )

    # ---- pass 3: transfers -------------------------------------------------------

    _run_transfers(prober, pairs, ts_arr)
    return collector


def _run_transfers(prober: Prober, pairs: List[_PairPlan], ts_arr: np.ndarray) -> None:
    """Count every sampled/faulted transfer; serve only the kept ones.

    Clean/faulty status is a pure function of (VP, route site, timestamp)
    — bitflip windows, stale-site windows and clock-skew episodes — so
    totals come from window masks and the expensive AXFR machinery only
    runs for observations that survive the keep filter (all faulted ones
    plus the 1-in-N clean sample).
    """
    collector = prober.collector
    plan = prober.fault_plan
    sampling = prober.sampling
    n_rounds = len(ts_arr)
    every = sampling.axfr_every
    keep_threshold = 1.0 / sampling.clean_transfer_keep_one_in
    stale_keys = {e.site_key for e in plan.stale_sites}

    kept: List[Tuple[Tuple[int, int, int], TransferObservation]] = []
    total = 0
    clean_total = 0

    for pair in pairs:
        vp = pair.vp
        events = [
            (i, e)
            for i, e in enumerate(plan.bitflips)
            if e.vp_id == vp.vp_id and e.address in (None, pair.sa.address)
        ]
        episode = plan.clocks.episodes.get(vp.vp_id)
        touches_stale = stale_keys and any(
            pair.routes[index].site.key in stale_keys for _s, _e, index in pair.epochs
        )
        pf = mix64_prefix(vp.vp_id, pair.addr_idx)

        if not events and episode is None and not touches_stale:
            # Fast path: every transfer of this pair is clean.
            r_tf = _sampled_rounds(vp.vp_id, every, n_rounds)
            if not len(r_tf):
                continue
            total += len(r_tf)
            clean_total += len(r_tf)
            ts_tf = ts_arr[r_tf]
            keep_tf = mix_float_array(pf, ts_tf, 29) < keep_threshold
            for row in np.nonzero(keep_tf)[0]:
                row = int(row)
                kept.append(
                    (
                        (int(r_tf[row]), vp.vp_id, pair.addr_idx),
                        _build_observation(
                            prober, vp, pair, int(ts_tf[row]), "", None, None, 0
                        ),
                    )
                )
            continue

        mask = np.zeros(n_rounds, dtype=bool)
        mask[(-vp.vp_id) % every::every] = True
        # bitflip_for returns the *first* matching event; overwrite in
        # reverse plan order so earlier events win.
        event_of = np.full(n_rounds, -1, dtype=np.int64)
        for i, event in reversed(events):
            lo, hi = np.searchsorted(ts_arr, (event.start_ts, event.end_ts))
            mask[lo:hi] = True
            event_of[lo:hi] = i
        r_tf = np.nonzero(mask)[0]
        if not len(r_tf):
            continue
        ts_tf = ts_arr[r_tf]
        total += len(r_tf)

        evt_tf = event_of[r_tf]
        stale_tf = np.zeros(len(r_tf), dtype=bool)
        frozen_of: Dict[int, object] = {}  # row -> StaleZoneEvent
        if touches_stale:
            for start, end, index in pair.epochs:
                site_key = pair.routes[index].site.key
                for stale in plan.stale_sites:
                    if stale.site_key != site_key:
                        continue
                    lo, hi = np.searchsorted(r_tf, (start, end))
                    window = (ts_tf[lo:hi] >= stale.freeze_from) & (
                        ts_tf[lo:hi] < stale.detected_until
                    )
                    stale_tf[lo:hi] |= window
                    for row in np.nonzero(window)[0] + lo:
                        frozen_of[int(row)] = stale
        if episode is None:
            offset_tf = np.zeros(len(r_tf), dtype=np.int64)
        else:
            offset_tf = np.where(
                (ts_tf >= episode.start_ts) & (ts_tf < episode.end_ts),
                np.int64(episode.offset_s),
                np.int64(0),
            )

        clean_tf = (evt_tf < 0) & ~stale_tf & (offset_tf == 0)
        clean_total += int(np.count_nonzero(clean_tf))

        keep_tf = mix_float_array(pf, ts_tf, 29) < keep_threshold
        record_tf = ~clean_tf | keep_tf
        if not record_tf.any():
            continue

        eidx_tf = pair.epoch_of(r_tf)
        for row in np.nonzero(record_tf)[0]:
            row = int(row)
            ts = int(ts_tf[row])
            route = pair.routes[pair.epochs[int(eidx_tf[row])][2]]
            kept.append(
                (
                    (int(r_tf[row]), vp.vp_id, pair.addr_idx),
                    _build_observation(
                        prober,
                        vp,
                        pair,
                        ts,
                        route.site.key,
                        None if evt_tf[row] < 0 else plan.bitflips[int(evt_tf[row])],
                        frozen_of.get(row),
                        int(offset_tf[row]),
                    ),
                )
            )

    collector.transfer_total += total
    collector.transfer_clean += clean_total
    kept.sort(key=lambda item: item[0])
    for _key, obs in kept:
        collector.transfers.append(obs)


def _build_observation(
    prober: Prober,
    vp: VantagePoint,
    pair: _PairPlan,
    ts: int,
    site_key: str,
    bitflip,
    frozen,
    clock_offset: int,
) -> TransferObservation:
    """Serve + record one kept transfer, mirroring ``Prober._do_transfer``."""
    deployment = prober.deployments[pair.sa.letter]
    distributor = deployment.distributor
    if frozen is not None:
        pub_ts, edition = ZoneDistributor.latest_publication(frozen.freeze_from)
    else:
        pub_ts, edition = ZoneDistributor.latest_publication(
            ts - distributor.propagation_lag_s
        )
    zone = distributor.zone_for_publication(pub_ts, edition)
    zone = deployment.axfr_of(zone).zone
    fault = ""
    fault_detail = ""
    if bitflip is not None:
        zone, report = flip_bit_in_zone(zone, bitflip, ts)
        fault = "bitflip"
        fault_detail = report.description
    elif frozen is not None:
        fault = "stale"
        fault_detail = f"site {site_key} frozen"
    return TransferObservation(
        vp_id=vp.vp_id,
        true_ts=ts,
        observed_ts=ts + clock_offset,
        address=pair.sa,
        serial=zone.serial,
        zone=zone,
        fault=fault,
        fault_detail=fault_detail,
    )
