"""The epoch-compiled campaign engine.

The scalar :meth:`~repro.vantage.probes.Prober.run_campaign` walks every
(round, VP, address) cell: tens of millions of ``RouteSelector.select``
calls, interner lookups and per-call hash mixes.  This engine exploits
the structure of the workload instead:

* **Routes are piecewise constant.**  Each (VP, address) pair's campaign
  is compiled into a handful of ``(round_start, round_end, route)``
  epochs (:mod:`repro.netsim.epochs`); site, identity and stability
  bookkeeping then costs one update per *epoch*, not per round.
* **Sampling is arithmetic.**  The ``(round + vp) % every == 0`` masks
  select arithmetic progressions of rounds, so probe and traceroute rows
  are produced as whole numpy blocks per pair — epoch-constant columns
  are gathers through the round→epoch index, and jitter/loss uniforms
  come from the array mixer (:func:`repro.netsim.mix.mix64_array`),
  which is bit-identical to the scalar mixer — and enter the collector
  through its batch-append APIs.
* **Almost no transfer is recorded.**  The scalar path runs a full AXFR
  for every sampled transfer and then throws nearly all of them away
  (``clean_transfer_keep_one_in``).  Faults and clock skew are pure
  functions of (VP, site, timestamp), so clean/faulty *counts* are
  computed from window masks alone and zones are only served for the
  observations that are actually kept.

The engine is exposed as :class:`EpochCampaignPlan`: compilation happens
once, then :meth:`~EpochCampaignPlan.emit_range` executes any
round range ``[lo, hi)`` — the streaming checkpoint path drives it one
chunk at a time, and :func:`run_epoch_campaign` is simply the single
range ``[0, n_rounds)``.  Every per-round draw is keyed by the round
number (counter-based mixing, no sequential RNG state), so the
concatenation of range emissions is byte-identical to one whole-campaign
emission — and a resumed run is byte-identical to an uninterrupted one.

Output is **byte-identical** to the scalar prober — same summary, same
interner contents in the same order, same identity dict insertion order,
same columns, same transfer observations — which
tests/vantage/test_epoch_engine.py asserts against the scalar path and
the sharded merge path.

Like the scalar scan (and the sharded merge, which sorts rows by
``(ts, vp_id)``), row ordering assumes the VP list is ascending in
``vp_id`` — true for every ring the builder produces.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.faults.bitflip import flip_bit_in_zone
from repro.geo.coords import RTT_MS_PER_KM
from repro.netsim.epochs import PairEpochStream, compile_pair_epochs
from repro.netsim.latency import JITTER, PER_HOP_MS
from repro.netsim.mix import mix64_array, mix64_prefix, mix_float_array
from repro.vantage.collector import CampaignCollector, TransferObservation
from repro.vantage.node import VantagePoint
from repro.vantage.probes import (
    Prober,
    QUERIES_PER_ADDRESS,
    STLH_MISSING_PROB,
)
from repro.vantage.scheduler import MeasurementSchedule
from repro.zone.distribution import ZoneDistributor


def _sampled_rounds(vp_id: int, every: int, n_rounds: int) -> np.ndarray:
    """Rounds where ``(round + vp_id) % every == 0``, ascending."""
    return np.arange((-vp_id) % every, n_rounds, every, dtype=np.int64)


def _sampled_rounds_range(vp_id: int, every: int, lo: int, hi: int) -> np.ndarray:
    """The ``[lo, hi)`` slice of :func:`_sampled_rounds`."""
    first = lo + ((-vp_id - lo) % every)
    return np.arange(first, hi, every, dtype=np.int64)


class _PairPlan:
    """One (VP, address) pair's compiled campaign."""

    __slots__ = ("vp", "addr_idx", "sa", "epochs", "routes", "starts")

    def __init__(self, vp: VantagePoint, addr_idx: int, sa, epochs, routes) -> None:
        self.vp = vp
        self.addr_idx = addr_idx
        self.sa = sa
        self.epochs = epochs  # [(start, end, candidate_index)]
        self.routes = routes  # candidate Route list
        self.starts = np.fromiter(
            (e[0] for e in epochs), dtype=np.int64, count=len(epochs)
        )

    def epoch_of(self, rounds: np.ndarray) -> np.ndarray:
        """Epoch index covering each (ascending) round number."""
        return np.searchsorted(self.starts, rounds, side="right") - 1

    def epoch_span(self, lo: int, hi: int) -> Tuple[int, int]:
        """Indices of the first and last epoch overlapping ``[lo, hi)``."""
        e_lo = int(np.searchsorted(self.starts, lo, side="right")) - 1
        e_hi = int(np.searchsorted(self.starts, hi - 1, side="right")) - 1
        return e_lo, e_hi


class _PairStream:
    """One (VP, address) pair's campaign as a lazy epoch stream."""

    __slots__ = ("vp", "addr_idx", "sa", "routes", "stream")

    def __init__(self, vp: VantagePoint, addr_idx: int, sa, routes, stream) -> None:
        self.vp = vp
        self.addr_idx = addr_idx
        self.sa = sa
        self.routes = routes
        self.stream = stream


class EpochCampaignPlan:
    """A compiled campaign that can be executed one round range at a time.

    Compilation (epoch lists per pair) is a pure function of the world
    and the schedule, so a resumed run recompiles the identical plan;
    :meth:`emit_range` then appends rounds ``[lo, hi)`` into the
    prober's collector.  Emitting ``[0, n)`` in one call or in any
    ascending, contiguous sequence of sub-ranges produces byte-identical
    collector contents — the invariant the checkpoint/resume path and
    ``tests/vantage/test_stream_equivalence.py`` rely on.

    With ``streamed=True`` the whole-campaign epoch lists are never
    held: each pair keeps a :class:`~repro.netsim.epochs.
    PairEpochStream` (the sparse trigger rounds plus a cursor), and
    :meth:`emit_range` materialises only the epochs overlapping the
    requested range, discarding them afterwards — epoch-plan memory is
    O(chunk) + O(pairs) instead of O(campaign).  The cost is that
    ranges must then be emitted in ascending order (the streaming
    checkpoint path's natural call pattern); output stays byte-identical
    to the materialized plan.
    """

    def __init__(
        self,
        prober: Prober,
        vps: List[VantagePoint],
        schedule: MeasurementSchedule,
        *,
        streamed: bool = False,
    ) -> None:
        self.prober = prober
        self.collector = prober.collector
        self.sampling = prober.sampling
        self.streamed = streamed
        ts_list = schedule.rounds()
        self.n_rounds = len(ts_list)
        self.ts_arr = np.asarray(ts_list, dtype=np.int64)

        selector = prober.selector
        self.pairs: List[_PairPlan] = []
        self._pair_streams: List[_PairStream] = []
        for vp in vps:
            for addr_idx, sa in enumerate(self.collector.addresses):
                routes = selector.candidates(vp.attachment, sa.letter, sa.family)
                if streamed:
                    stream = PairEpochStream(
                        selector.churn,
                        vp.vp_id,
                        sa.address,
                        sa.letter,
                        sa.family,
                        self.n_rounds,
                        len(routes),
                    )
                    self._pair_streams.append(
                        _PairStream(vp, addr_idx, sa, routes, stream)
                    )
                else:
                    epochs = compile_pair_epochs(
                        selector.churn,
                        vp.vp_id,
                        sa.address,
                        sa.letter,
                        sa.family,
                        self.n_rounds,
                        len(routes),
                    )
                    self.pairs.append(_PairPlan(vp, addr_idx, sa, epochs, routes))

    # -- range execution ---------------------------------------------------------------

    def emit_range(self, lo: int, hi: int) -> None:
        """Execute rounds ``[lo, hi)``, appending into the collector."""
        if not 0 <= lo <= hi <= self.n_rounds:
            raise ValueError(
                f"round range [{lo}, {hi}) outside campaign [0, {self.n_rounds})"
            )
        if lo == hi:
            return
        if self.streamed:
            # Materialise only the epochs overlapping this range; the
            # helpers below see the same epoch tuples (true bounds) the
            # materialized plan's epoch_span would have selected, so
            # every downstream computation is unchanged.
            pairs = [
                _PairPlan(p.vp, p.addr_idx, p.sa, p.stream.take(lo, hi), p.routes)
                for p in self._pair_streams
            ]
        else:
            pairs = self.pairs
        self._update_aggregates(pairs, lo, hi)
        tr_state = self._intern_hops(pairs, lo, hi)
        self._emit_rows(pairs, lo, hi, tr_state)
        self._run_transfers(pairs, lo, hi)

    def _update_aggregates(self, pairs: List[_PairPlan], lo: int, hi: int) -> None:
        """Sites, identities, stability and counters for ``[lo, hi)``.

        First-occurrence keys are clipped to ``max(epoch_start, lo)``;
        for a value first *live* in this range every clip is a no-op
        (an epoch starting earlier would have made it live earlier), so
        interned order keys equal the whole-campaign scan's keys.
        """
        collector = self.collector
        site_index = collector.sites._index
        site_first: Dict[str, Tuple[int, int, int]] = {}
        ident_first: Dict[Tuple[str, str], Tuple[int, int, int]] = {}
        ident_delta: Dict[Tuple[str, str], int] = {}

        for pair in pairs:
            vp_id = pair.vp.vp_id
            addr_idx = pair.addr_idx
            e_lo, e_hi = pair.epoch_span(lo, hi)
            for e in range(e_lo, e_hi + 1):
                start, end, index = pair.epochs[e]
                route = pair.routes[index]
                key = (max(start, lo), vp_id, addr_idx)
                site_key = route.site.key
                if site_key not in site_index and (
                    site_key not in site_first or key < site_first[site_key]
                ):
                    site_first[site_key] = key
                ident_key = (pair.sa.letter, route.site.identity())
                overlap = min(end, hi) - max(start, lo)
                ident_delta[ident_key] = ident_delta.get(ident_key, 0) + overlap
                known = (
                    ident_key[0] in collector.identities
                    and ident_key[1] in collector.identities[ident_key[0]]
                )
                if not known and (
                    ident_key not in ident_first or key < ident_first[ident_key]
                ):
                    ident_first[ident_key] = key

        for site_key in sorted(site_first, key=site_first.__getitem__):
            collector.sites.intern(site_key, site_first[site_key])

        for letter, identity in sorted(ident_first, key=ident_first.__getitem__):
            collector.identities.setdefault(letter, {})[identity] = 0
            collector._identity_order[(letter, identity)] = ident_first[
                (letter, identity)
            ]
        for (letter, identity), delta in ident_delta.items():
            collector.identities[letter][identity] += delta

        # Stability: pairs enter the dict in pass scan order during the
        # first range (round 0), matching the scalar serial insertion
        # order; an epoch start *at* lo belongs to this range's changes.
        stability = collector._stability
        for pair in pairs:
            e_lo, e_hi = pair.epoch_span(lo, hi)
            last_site = site_index[pair.routes[pair.epochs[e_hi][2]].site.key]
            changes = e_hi - e_lo
            if lo >= 1 and pair.epochs[e_lo][0] == lo:
                changes += 1
            state = stability.get((pair.vp.vp_id, pair.addr_idx))
            if state is None:
                stability[(pair.vp.vp_id, pair.addr_idx)] = [
                    last_site,
                    changes,
                    hi - lo,
                ]
            else:
                state[0] = last_site
                state[1] += changes
                state[2] += hi - lo

        collector.queries_simulated += (
            (hi - lo) * len(pairs) * QUERIES_PER_ADDRESS
        )
        collector.rounds_processed += hi - lo

    def _intern_hops(
        self, pairs: List[_PairPlan], lo: int, hi: int
    ) -> List[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Traceroute sampling for ``[lo, hi)``; fixes hop interner order."""
        collector = self.collector
        hop_known = collector.hops._index
        tr_state: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        hop_first: Dict[str, Tuple[int, int, int]] = {}
        for pair in pairs:
            r_tr = _sampled_rounds_range(
                pair.vp.vp_id, self.sampling.traceroute_every, lo, hi
            )
            if not len(r_tr):
                tr_state.append((r_tr, r_tr, r_tr))
                continue
            pf = mix64_prefix(pair.vp.vp_id, pair.addr_idx)
            missing = mix_float_array(pf, r_tr, 13) < STLH_MISSING_PROB
            eidx = pair.epoch_of(r_tr)
            tr_state.append((r_tr, missing, eidx))
            answered = ~missing
            # first answered sampled round of each epoch that has one
            first_rows = np.unique(eidx[answered], return_index=True)[1]
            answered_rounds = r_tr[answered]
            answered_eidx = eidx[answered]
            for row in first_rows:
                hop = pair.routes[
                    pair.epochs[int(answered_eidx[row])][2]
                ].second_to_last_hop
                if hop in hop_known:
                    continue
                key = (int(answered_rounds[row]), pair.vp.vp_id, pair.addr_idx)
                if hop not in hop_first or key < hop_first[hop]:
                    hop_first[hop] = key
        for hop in sorted(hop_first, key=hop_first.__getitem__):
            collector.hops.intern(hop, hop_first[hop])
        return tr_state

    def _emit_rows(
        self,
        pairs: List[_PairPlan],
        lo: int,
        hi: int,
        tr_state: List[Tuple[np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        """Columnar probe/traceroute row production for ``[lo, hi)``."""
        collector = self.collector
        prober = self.prober
        sampling = self.sampling
        site_index = collector.sites._index
        hop_index = collector.hops._index
        ts_arr = self.ts_arr

        p_cols: Dict[str, List[np.ndarray]] = {
            name: [] for name in ("round", "vp", "addr", "site", "rtt",
                                  "direct_km", "closest_km", "peer", "transit")
        }
        t_cols: Dict[str, List[np.ndarray]] = {
            name: [] for name in ("round", "vp", "addr", "hop")
        }

        for pair, (r_tr, missing, eidx_tr) in zip(pairs, tr_state):
            vp = pair.vp
            pf = mix64_prefix(vp.vp_id, pair.addr_idx)
            n_epochs = len(pair.epochs)

            # per-epoch route constants
            site_e = np.empty(n_epochs, dtype=np.int64)
            hop_e = np.empty(n_epochs, dtype=np.int64)
            base_e = np.empty(n_epochs, dtype=np.float64)
            skpfx_e = np.empty(n_epochs, dtype=np.uint64)
            direct_e = np.empty(n_epochs, dtype=np.float64)
            peer_e = np.empty(n_epochs, dtype=bool)
            transit_e = np.empty(n_epochs, dtype=np.int64)
            for i, (_start, _end, index) in enumerate(pair.epochs):
                route = pair.routes[index]
                # epochs entirely outside [lo, hi) may reference sites
                # not yet live/interned; rows never gather them
                site_e[i] = site_index.get(route.site.key, -1)
                # a hop whose every sampled round (so far) was lost is
                # absent from the interner; those rows are forced to -1
                # below anyway
                hop_e[i] = hop_index.get(route.second_to_last_hop, -1)
                # identical op order to netsim.latency.route_rtt_ms
                base_e[i] = route.path_km * RTT_MS_PER_KM + (
                    PER_HOP_MS * route.hop_count + vp.last_mile_ms + route.extra_ms
                )
                skpfx_e[i] = mix64_prefix(route.stable_key)
                direct_e[i] = route.direct_km
                peer_e[i] = route.via != "transit"
                transit_e[i] = 0 if route.transit is None else route.transit.asn

            # probe rows
            r_rtt = _sampled_rounds_range(vp.vp_id, sampling.rtt_every, lo, hi)
            if len(r_rtt):
                closest = prober._closest_global_km(
                    vp.attachment.city.iata, pair.sa.letter
                )
                eidx = pair.epoch_of(r_rtt)
                u = mix_float_array(skpfx_e[eidx], mix64_array(pf, r_rtt))
                n = len(r_rtt)
                p_cols["round"].append(r_rtt)
                p_cols["vp"].append(np.full(n, vp.vp_id, dtype=np.int64))
                p_cols["addr"].append(np.full(n, pair.addr_idx, dtype=np.int64))
                p_cols["site"].append(site_e[eidx])
                p_cols["rtt"].append(base_e[eidx] * (1.0 - JITTER + u * 4.0 * JITTER))
                p_cols["direct_km"].append(direct_e[eidx])
                p_cols["closest_km"].append(np.full(n, closest, dtype=np.float64))
                p_cols["peer"].append(peer_e[eidx])
                p_cols["transit"].append(transit_e[eidx])

            # traceroute rows
            if len(r_tr):
                hop_col = hop_e[eidx_tr]
                hop_col[missing] = -1
                t_cols["round"].append(r_tr)
                t_cols["vp"].append(np.full(len(r_tr), vp.vp_id, dtype=np.int64))
                t_cols["addr"].append(
                    np.full(len(r_tr), pair.addr_idx, dtype=np.int64)
                )
                t_cols["hop"].append(hop_col)

        # Serial scan order is (round, vp, addr); per-pair blocks are
        # already round-ascending, so a stable lexsort restores the exact
        # row order.  Ranges are emitted in ascending round order, so
        # concatenating per-range blocks reproduces the whole-campaign
        # table.
        if p_cols["round"]:
            cat = {name: np.concatenate(blocks) for name, blocks in p_cols.items()}
            order = np.lexsort((cat["addr"], cat["vp"], cat["round"]))
            collector.add_probe_block(
                vp=cat["vp"][order],
                ts=ts_arr[cat["round"][order]],
                addr=cat["addr"][order],
                site=cat["site"][order],
                rtt=cat["rtt"][order],
                direct_km=cat["direct_km"][order],
                closest_km=cat["closest_km"][order],
                peer=cat["peer"][order],
                transit=cat["transit"][order],
            )
        if t_cols["round"]:
            cat = {name: np.concatenate(blocks) for name, blocks in t_cols.items()}
            order = np.lexsort((cat["addr"], cat["vp"], cat["round"]))
            collector.add_traceroute_block(
                vp=cat["vp"][order],
                ts=ts_arr[cat["round"][order]],
                addr=cat["addr"][order],
                hop=cat["hop"][order],
            )

    # -- transfers ---------------------------------------------------------------------

    def _run_transfers(self, pairs: List[_PairPlan], lo: int, hi: int) -> None:
        """Count every sampled/faulted transfer in ``[lo, hi)``; serve
        only the kept ones.

        Clean/faulty status is a pure function of (VP, route site,
        timestamp) — bitflip windows, stale-site windows and clock-skew
        episodes — so totals come from window masks and the expensive
        AXFR machinery only runs for observations that survive the keep
        filter (all faulted ones plus the 1-in-N clean sample).
        """
        prober = self.prober
        collector = self.collector
        plan = prober.fault_plan
        sampling = self.sampling
        ts_arr = self.ts_arr
        n_rounds = self.n_rounds
        every = sampling.axfr_every
        keep_threshold = 1.0 / sampling.clean_transfer_keep_one_in
        stale_keys = {e.site_key for e in plan.stale_sites}

        kept: List[Tuple[Tuple[int, int, int], TransferObservation]] = []
        total = 0
        clean_total = 0

        for pair in pairs:
            vp = pair.vp
            events = [
                (i, e)
                for i, e in enumerate(plan.bitflips)
                if e.vp_id == vp.vp_id and e.address in (None, pair.sa.address)
            ]
            episode = plan.clocks.episodes.get(vp.vp_id)
            touches_stale = stale_keys and any(
                pair.routes[index].site.key in stale_keys
                for _s, _e, index in pair.epochs
            )
            pf = mix64_prefix(vp.vp_id, pair.addr_idx)

            if not events and episode is None and not touches_stale:
                # Fast path: every transfer of this pair is clean.
                r_tf = _sampled_rounds_range(vp.vp_id, every, lo, hi)
                if not len(r_tf):
                    continue
                total += len(r_tf)
                clean_total += len(r_tf)
                ts_tf = ts_arr[r_tf]
                keep_tf = mix_float_array(pf, ts_tf, 29) < keep_threshold
                for row in np.nonzero(keep_tf)[0]:
                    row = int(row)
                    kept.append(
                        (
                            (int(r_tf[row]), vp.vp_id, pair.addr_idx),
                            self._build_observation(
                                vp, pair, int(ts_tf[row]), "", None, None, 0
                            ),
                        )
                    )
                continue

            mask = np.zeros(n_rounds, dtype=bool)
            mask[(-vp.vp_id) % every::every] = True
            # bitflip_for returns the *first* matching event; overwrite in
            # reverse plan order so earlier events win.
            event_of = np.full(n_rounds, -1, dtype=np.int64)
            for i, event in reversed(events):
                w_lo, w_hi = np.searchsorted(ts_arr, (event.start_ts, event.end_ts))
                mask[w_lo:w_hi] = True
                event_of[w_lo:w_hi] = i
            mask[:lo] = False
            mask[hi:] = False
            r_tf = np.nonzero(mask)[0]
            if not len(r_tf):
                continue
            ts_tf = ts_arr[r_tf]
            total += len(r_tf)

            evt_tf = event_of[r_tf]
            stale_tf = np.zeros(len(r_tf), dtype=bool)
            frozen_of: Dict[int, object] = {}  # row -> StaleZoneEvent
            if touches_stale:
                for start, end, index in pair.epochs:
                    site_key = pair.routes[index].site.key
                    for stale in plan.stale_sites:
                        if stale.site_key != site_key:
                            continue
                        w_lo, w_hi = np.searchsorted(r_tf, (start, end))
                        window = (ts_tf[w_lo:w_hi] >= stale.freeze_from) & (
                            ts_tf[w_lo:w_hi] < stale.detected_until
                        )
                        stale_tf[w_lo:w_hi] |= window
                        for row in np.nonzero(window)[0] + w_lo:
                            frozen_of[int(row)] = stale
            if episode is None:
                offset_tf = np.zeros(len(r_tf), dtype=np.int64)
            else:
                offset_tf = np.where(
                    (ts_tf >= episode.start_ts) & (ts_tf < episode.end_ts),
                    np.int64(episode.offset_s),
                    np.int64(0),
                )

            clean_tf = (evt_tf < 0) & ~stale_tf & (offset_tf == 0)
            clean_total += int(np.count_nonzero(clean_tf))

            keep_tf = mix_float_array(pf, ts_tf, 29) < keep_threshold
            record_tf = ~clean_tf | keep_tf
            if not record_tf.any():
                continue

            eidx_tf = pair.epoch_of(r_tf)
            for row in np.nonzero(record_tf)[0]:
                row = int(row)
                ts = int(ts_tf[row])
                route = pair.routes[pair.epochs[int(eidx_tf[row])][2]]
                kept.append(
                    (
                        (int(r_tf[row]), vp.vp_id, pair.addr_idx),
                        self._build_observation(
                            vp,
                            pair,
                            ts,
                            route.site.key,
                            None if evt_tf[row] < 0 else plan.bitflips[int(evt_tf[row])],
                            frozen_of.get(row),
                            int(offset_tf[row]),
                        ),
                    )
                )

        collector.transfer_total += total
        collector.transfer_clean += clean_total
        kept.sort(key=lambda item: item[0])
        for _key, obs in kept:
            collector.transfers.append(obs)

    def _build_observation(
        self,
        vp: VantagePoint,
        pair: _PairPlan,
        ts: int,
        site_key: str,
        bitflip,
        frozen,
        clock_offset: int,
    ) -> TransferObservation:
        """Serve + record one kept transfer, mirroring
        ``Prober._do_transfer``."""
        prober = self.prober
        deployment = prober.deployments[pair.sa.letter]
        distributor = deployment.distributor
        if frozen is not None:
            pub_ts, edition = ZoneDistributor.latest_publication(frozen.freeze_from)
        else:
            pub_ts, edition = ZoneDistributor.latest_publication(
                ts - distributor.propagation_lag_s
            )
        zone = distributor.zone_for_publication(pub_ts, edition)
        zone = deployment.axfr_of(zone).zone
        fault = ""
        fault_detail = ""
        if bitflip is not None:
            zone, report = flip_bit_in_zone(zone, bitflip, ts)
            fault = "bitflip"
            fault_detail = report.description
        elif frozen is not None:
            fault = "stale"
            fault_detail = f"site {site_key} frozen"
        return TransferObservation(
            vp_id=vp.vp_id,
            true_ts=ts,
            observed_ts=ts + clock_offset,
            address=pair.sa,
            serial=zone.serial,
            zone=zone,
            fault=fault,
            fault_detail=fault_detail,
        )


def run_epoch_campaign(
    prober: Prober,
    vps: List[VantagePoint],
    schedule: MeasurementSchedule,
) -> CampaignCollector:
    """Run the campaign via epoch compilation; returns the collector.

    Drop-in replacement for ``prober.run_campaign(vps, schedule)`` with
    byte-identical collector output.  Unlike the scalar path it advances
    no churn state and never mutates the distributor's freeze state, so
    it composes freely with in-process sharding.
    """
    plan = EpochCampaignPlan(prober, vps, schedule)
    plan.emit_range(0, plan.n_rounds)
    return prober.collector
