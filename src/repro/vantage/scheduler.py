"""The measurement timeline (paper Figure 2).

The campaign ran 2023-07-03 .. 2023-12-24 at a 30-minute interval, with
two 15-minute high-resolution windows: around the ZONEMD placeholder
roll-out (2023-09-08 .. 2023-10-02) and around the b.root renumbering
(2023-11-20 .. 2023-12-06).

``interval_scale`` stretches the intervals proportionally so scaled-down
simulations keep the same *structure* (base vs high-resolution phases,
events at the same calendar positions) at a fraction of the rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.util.timeutil import MINUTE, Timestamp, parse_ts

CAMPAIGN_START = parse_ts("2023-07-03")
CAMPAIGN_END = parse_ts("2023-12-24")

#: (window start, window end) of the 15-minute high-resolution phases.
HIGH_RES_WINDOWS: Tuple[Tuple[Timestamp, Timestamp], ...] = (
    (parse_ts("2023-09-08"), parse_ts("2023-10-02")),
    (parse_ts("2023-11-20"), parse_ts("2023-12-06")),
)

BASE_INTERVAL_S = 30 * MINUTE
HIGH_RES_INTERVAL_S = 15 * MINUTE


@dataclass(frozen=True)
class MeasurementSchedule:
    """Generates the campaign's measurement instants."""

    start: Timestamp = CAMPAIGN_START
    end: Timestamp = CAMPAIGN_END
    interval_scale: float = 1.0
    high_res_windows: Tuple[Tuple[Timestamp, Timestamp], ...] = HIGH_RES_WINDOWS

    def __post_init__(self) -> None:
        if self.interval_scale <= 0:
            raise ValueError(f"interval_scale must be positive: {self.interval_scale}")
        if self.end <= self.start:
            raise ValueError("schedule end must be after start")

    def interval_at(self, ts: Timestamp) -> int:
        """The measurement interval in force at *ts*."""
        base = BASE_INTERVAL_S
        for lo, hi in self.high_res_windows:
            if lo <= ts < hi:
                base = HIGH_RES_INTERVAL_S
                break
        return max(MINUTE, int(base * self.interval_scale))

    def instants(self) -> Iterator[Timestamp]:
        """All measurement instants, ascending."""
        ts = self.start
        while ts < self.end:
            yield ts
            ts += self.interval_at(ts)

    def rounds(self) -> List[Timestamp]:
        """Materialised instants (convenience)."""
        return list(self.instants())

    def round_count(self) -> int:
        """Number of rounds without materialising timestamps twice."""
        return sum(1 for _ in self.instants())
