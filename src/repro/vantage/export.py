"""Dataset export/import — thin wrappers over :mod:`repro.data`.

The paper open-sources its measurement data (Appendix A; 0.5 TB after a
dictionary/ZSTD pipeline).  The equivalent for simulated campaigns lives
in :mod:`repro.data`: a typed, versioned directory format (raw
little-endian column files + JSON manifest) reloaded zero-copy via
``np.memmap``.  These wrappers keep the historical call sites working:

* :func:`export_dataset` seals a collector into a
  :class:`~repro.data.Dataset` and writes it — including full-fidelity
  transfer records (zone content fingerprint, serial, validation
  verdict), closing the old format's "metadata only" transfer gap,
* :func:`load_dataset` reloads a directory into a
  :class:`~repro.data.Dataset`, which the analysis layer accepts
  wherever it takes a collector (same column and accessor names).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.data import Dataset
from repro.data import load_dataset as _load_dataset
from repro.data import save_dataset
from repro.data.schema import SCHEMA_VERSION as FORMAT_VERSION  # noqa: F401
from repro.vantage.collector import CampaignCollector


def export_dataset(
    collector: CampaignCollector,
    directory: Union[str, Path],
    config: Optional[object] = None,
) -> Path:
    """Write a campaign dataset to *directory*; returns its path.

    *config* — the study's :class:`~repro.core.config.StudyConfig`, when
    available — is recorded as the dataset's study fingerprint, which is
    what lets ``rootsim-analyze`` re-derive seed-deterministic inputs
    (VP ring, site catalog) without re-simulation.  Prefer
    ``StudyResults.save``, which passes it automatically.
    """
    return save_dataset(Dataset.from_collector(collector, config), directory)


def load_dataset(directory: Union[str, Path]) -> Dataset:
    """Reload a dataset written by :func:`export_dataset` /
    ``rootsim-study --save`` (zero-copy, mmap-backed)."""
    return _load_dataset(directory)
