"""Dataset export/import.

The paper open-sources its measurement data (Appendix A; 0.5 TB after a
dictionary/ZSTD pipeline).  This module provides the equivalent for
simulated campaigns: the collector's tables go to a directory as
compressed numpy archives plus JSON sidecars, and can be reloaded into a
read-only dataset object that the analysis layer accepts wherever it
takes a collector (same column and accessor names).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rss.operators import ServiceAddress, all_service_addresses
from repro.vantage.collector import CampaignCollector

FORMAT_VERSION = 1


def export_dataset(collector: CampaignCollector, directory: str) -> Path:
    """Write a campaign dataset to *directory*; returns its path.

    Transfer observations are exported as metadata only (zone objects
    stay in-process; the zones are reproducible from the study seed).
    """
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)

    np.savez_compressed(path / "probes.npz", **collector.probe_columns())
    np.savez_compressed(path / "traceroutes.npz", **collector.traceroute_columns())

    stability = {
        f"{vp_id}:{addr_idx}": [changes, rounds]
        for (vp_id, addr_idx), (changes, rounds) in collector.change_counts().items()
    }
    (path / "stability.json").write_text(json.dumps(stability))
    (path / "identities.json").write_text(json.dumps(collector.identities))
    (path / "sites.json").write_text(json.dumps(collector.sites.values))
    (path / "hops.json").write_text(json.dumps(collector.hops.values))

    transfers = [
        {
            "vp_id": obs.vp_id,
            "true_ts": obs.true_ts,
            "observed_ts": obs.observed_ts,
            "address": obs.address.address,
            "serial": obs.serial,
            "fault": obs.fault,
            "fault_detail": obs.fault_detail,
        }
        for obs in collector.transfers
    ]
    with open(path / "transfers.jsonl", "w") as handle:
        for row in transfers:
            handle.write(json.dumps(row) + "\n")

    manifest = {
        "format_version": FORMAT_VERSION,
        "summary": collector.summary(),
        "addresses": [sa.address for sa in collector.addresses],
        "files": [
            "probes.npz", "traceroutes.npz", "stability.json",
            "identities.json", "sites.json", "hops.json", "transfers.jsonl",
        ],
    }
    (path / "MANIFEST.json").write_text(json.dumps(manifest, indent=2))
    return path


@dataclass
class LoadedDataset:
    """A reloaded campaign dataset (analysis-compatible subset).

    Provides the same read-side surface the analyses use on a live
    collector: ``addresses``, ``addr_index``, ``sites``, ``hops``,
    ``identities``, ``probe_columns()``, ``traceroute_columns()``,
    ``change_counts()`` and ``summary()``.
    """

    addresses: List[ServiceAddress]
    addr_index: Dict[str, int]
    sites: List[str]
    hops: List[str]
    identities: Dict[str, Dict[str, int]]
    _probes: Dict[str, np.ndarray]
    _traceroutes: Dict[str, np.ndarray]
    _stability: Dict[Tuple[int, int], Tuple[int, int]]
    _summary: Dict[str, int]
    transfers_meta: List[dict]

    def probe_columns(self) -> Dict[str, np.ndarray]:
        return dict(self._probes)

    def traceroute_columns(self) -> Dict[str, np.ndarray]:
        return dict(self._traceroutes)

    def change_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        return dict(self._stability)

    def summary(self) -> Dict[str, int]:
        return dict(self._summary)


def load_dataset(directory: str) -> LoadedDataset:
    """Reload a dataset written by :func:`export_dataset`."""
    path = Path(directory)
    manifest = json.loads((path / "MANIFEST.json").read_text())
    if manifest.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format {manifest.get('format_version')!r}"
        )

    catalog = {sa.address: sa for sa in all_service_addresses()}
    addresses = [catalog[a] for a in manifest["addresses"]]

    with np.load(path / "probes.npz") as data:
        probes = {key: data[key] for key in data.files}
    with np.load(path / "traceroutes.npz") as data:
        traceroutes = {key: data[key] for key in data.files}

    stability_raw = json.loads((path / "stability.json").read_text())
    stability = {}
    for key, (changes, rounds) in stability_raw.items():
        vp_id, addr_idx = key.split(":")
        stability[(int(vp_id), int(addr_idx))] = (changes, rounds)

    transfers_meta: List[dict] = []
    transfers_file = path / "transfers.jsonl"
    if transfers_file.exists():
        for line in transfers_file.read_text().splitlines():
            if line.strip():
                transfers_meta.append(json.loads(line))

    return LoadedDataset(
        addresses=addresses,
        addr_index={sa.address: i for i, sa in enumerate(addresses)},
        sites=json.loads((path / "sites.json").read_text()),
        hops=json.loads((path / "hops.json").read_text()),
        identities=json.loads((path / "identities.json").read_text()),
        _probes=probes,
        _traceroutes=traceroutes,
        _stability=stability,
        _summary=manifest["summary"],
        transfers_meta=transfers_meta,
    )
