"""The vantage point population.

Reproduces the paper's Table 3 distribution: 675 VPs in 523 networks and
62 countries — Europe-heavy (435 VPs), with thin coverage of Africa (10)
and South America (13).  Populations can be scaled down proportionally
for cheaper runs while preserving the regional mix.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.geo.cities import City, cities_in
from repro.geo.continents import Continent
from repro.netsim.attachment import Attachment
from repro.netsim.facilities import IXP_CATALOG
from repro.netsim.transit import TRANSIT_CATALOG, TransitProvider
from repro.util.rng import RngFactory
from repro.vantage.node import VantagePoint

#: Paper Table 3: (vantage points, unique countries, unique networks).
REGION_PLAN: Dict[Continent, Tuple[int, int, int]] = {
    Continent.AFRICA: (10, 4, 9),
    Continent.ASIA: (52, 19, 31),
    Continent.EUROPE: (435, 29, 386),
    Continent.NORTH_AMERICA: (133, 3, 94),
    Continent.SOUTH_AMERICA: (13, 3, 12),
    Continent.OCEANIA: (32, 4, 22),
}

#: Probability a VP's network peers at a reachable exchange, per region
#: (Europe's dense peering culture vs thinner fabrics elsewhere).
IXP_MEMBERSHIP_PROB: Dict[Continent, float] = {
    Continent.AFRICA: 0.35,
    Continent.ASIA: 0.35,
    Continent.EUROPE: 0.55,
    Continent.NORTH_AMERICA: 0.40,
    Continent.SOUTH_AMERICA: 0.45,
    Continent.OCEANIA: 0.35,
}

#: Mean last-mile latency (ms) per region for ring nodes (mostly hosted
#: in server networks, so low).
LAST_MILE_MS: Dict[Continent, float] = {
    Continent.AFRICA: 6.0,
    Continent.ASIA: 4.0,
    Continent.EUROPE: 2.0,
    Continent.NORTH_AMERICA: 2.5,
    Continent.SOUTH_AMERICA: 5.0,
    Continent.OCEANIA: 4.0,
}


@dataclass(frozen=True)
class RingConfig:
    """Scaling knobs for the VP population.

    ``min_per_region`` keeps thin regions (Africa, South America)
    statistically usable in scaled-down rings; the paper itself flags
    their low VP counts as a limitation (Appendix E).
    """

    scale: float = 1.0  # 1.0 = the paper's 675 VPs
    first_asn: int = 50000
    min_per_region: int = 1
    #: Per-continent multipliers (by :class:`Continent` name, e.g.
    #: ``(("ASIA", 1.6),)``) applied on top of ``scale`` — how a
    #: scenario's world layer densifies coverage of a studied region.
    region_scale: Tuple[Tuple[str, float], ...] = ()

    def region_count(self, continent: Continent) -> int:
        full, _countries, _nets = REGION_PLAN[continent]
        scale = self.scale * dict(self.region_scale).get(continent.name, 1.0)
        return max(self.min_per_region, int(round(full * scale)))


def _pick_transits(
    rng: random.Random, city: City, family: int, count: int
) -> Tuple[TransitProvider, ...]:
    """Weighted upstream choice: openness × regional proximity."""
    weights: List[float] = []
    for transit in TRANSIT_CATALOG:
        proximity = 1.0 / (1.0 + transit.pop_distance_km(city) / 2000.0)
        proximity = max(proximity, transit.remote_appeal)
        # Squared: transit markets concentrate on the locally strong
        # carriers; a provider with no nearby PoP and no open-peering
        # appeal rarely wins an upstream slot.
        weights.append((transit.openness(family) * proximity) ** 2)
    chosen: List[TransitProvider] = []
    pool = list(TRANSIT_CATALOG)
    pool_weights = list(weights)
    for _ in range(min(count, len(pool))):
        pick = rng.choices(range(len(pool)), weights=pool_weights, k=1)[0]
        chosen.append(pool.pop(pick))
        pool_weights.pop(pick)
    return tuple(chosen)


def _ixp_memberships(
    rng: random.Random, city: City, continent: Continent
) -> Tuple[str, ...]:
    """Exchanges this network peers at: nearby ones, region-weighted."""
    memberships: List[str] = []
    prob = IXP_MEMBERSHIP_PROB[continent]
    for ixp in IXP_CATALOG:
        if ixp.continent is not continent:
            continue
        distance = city.location.distance_km(ixp.city.location)
        # Joining likelihood decays with distance; big exchanges attract
        # remote peering from further away.
        reach = 1500.0 * ixp.size
        if distance > reach * 2:
            continue
        if rng.random() < prob * max(0.2, 1.0 - distance / (reach * 2)):
            memberships.append(ixp.ixp_id)
    return tuple(memberships)


def build_ring(rng_factory: RngFactory, config: RingConfig = RingConfig()) -> List[VantagePoint]:
    """Build the VP population.

    Networks (ASes) are created per region to match the Table 3
    VP:network ratio; some ASes host multiple VPs, as on the real ring.
    IPv6 attachments differ from IPv4 (extra open-v6 upstream adoption,
    differing memberships) — the substrate for every RQ2 analysis.
    """
    rng = rng_factory.stream("ring.population")
    vps: List[VantagePoint] = []
    vp_id = 0
    next_asn = config.first_asn
    for continent in Continent:
        full_vps, _n_countries, full_nets = REGION_PLAN[continent]
        n_vps = config.region_count(continent)
        n_networks = max(1, int(round(full_nets * n_vps / full_vps)))
        cities = cities_in(continent)
        # Build the networks first; VPs then land in them.
        networks: List[Attachment] = []
        for _ in range(n_networks):
            home = rng.choice(cities)
            transits_v4 = _pick_transits(rng, home, 4, rng.choice((1, 2, 2, 3)))
            # IPv6 upstreams are chosen independently: many networks buy
            # v6 from different (often fewer, more open) providers.
            transits_v6 = _pick_transits(rng, home, 6, rng.choice((1, 1, 2)))
            memberships_v4 = _ixp_memberships(rng, home, continent)
            # v6 peering is a subset/superset: some sessions are v4-only,
            # open exchanges add v6-only reach.
            memberships_v6 = tuple(
                m for m in memberships_v4 if rng.random() < 0.85
            )
            networks.append(
                Attachment(
                    asn=next_asn,
                    city=home,
                    transits_v4=transits_v4,
                    transits_v6=transits_v6,
                    ixp_memberships_v4=memberships_v4,
                    ixp_memberships_v6=memberships_v6,
                )
            )
            next_asn += 1
        for i in range(n_vps):
            attachment = networks[i % len(networks)]
            last_mile = max(
                0.5, rng.gauss(LAST_MILE_MS[continent], LAST_MILE_MS[continent] / 3)
            )
            vps.append(
                VantagePoint(
                    vp_id=vp_id,
                    name=f"ring{vp_id:04d}.{attachment.city.iata.lower()}",
                    attachment=attachment,
                    last_mile_ms=last_mile,
                )
            )
            vp_id += 1
    return vps


def with_clock_faults(
    vps: List[VantagePoint], faulty: Dict[int, int]
) -> List[VantagePoint]:
    """Return a population with clock offsets applied to chosen VPs."""
    out: List[VantagePoint] = []
    for vp in vps:
        if vp.vp_id in faulty:
            out.append(
                VantagePoint(
                    vp_id=vp.vp_id,
                    name=vp.name,
                    attachment=vp.attachment,
                    last_mile_ms=vp.last_mile_ms,
                    clock_offset_s=faulty[vp.vp_id],
                )
            )
        else:
            out.append(vp)
    return out
