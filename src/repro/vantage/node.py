"""A single vantage point (ring node)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.continents import Continent
from repro.netsim.attachment import Attachment


@dataclass(frozen=True)
class VantagePoint:
    """One measurement node.

    ``clock_offset_s`` models skewed node clocks — the paper found six
    time-related validation errors caused by two VPs with inaccurate
    clocks (§7), so the timestamp a VP *records* is ``true_ts + offset``.
    """

    vp_id: int
    name: str
    attachment: Attachment
    last_mile_ms: float
    clock_offset_s: int = 0

    @property
    def asn(self) -> int:
        return self.attachment.asn

    @property
    def country(self) -> str:
        return self.attachment.city.country

    @property
    def continent(self) -> Continent:
        return self.attachment.continent

    def observed_time(self, true_ts: int) -> int:
        """The timestamp this VP writes into its records."""
        return true_ts + self.clock_offset_s
