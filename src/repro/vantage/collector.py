"""Streaming campaign data collection.

A paper-scale campaign produces ~158 M probe events; storing each as an
object would not fit in memory.  The collector therefore keeps:

* **stability counters** — per (VP, service address): consecutive-round
  site-change counts (all the Figure 3 analysis needs),
* **sampled probe rows** — columnar vp/ts/address/site/RTT/distance data
  (Figures 5, 6, 14, 15 are statistical, sampling is sufficient),
* **sampled traceroute rows** — second-to-last hop observations (RQ1),
* **observed identities** — per letter, the CHAOS identity strings seen
  (coverage, Tables 1/4),
* **transfer observations** — aggregate counts for clean AXFRs plus full
  zone references for the interesting ones (faulted, stale, skewed-clock
  VPs) that the ZONEMD audit (Table 2) validates.

Row storage is columnar from the start: preallocated, doubling numpy
buffers (:class:`_ColumnTable`) with batch-append APIs
(:meth:`CampaignCollector.add_probe_block`,
:meth:`CampaignCollector.add_traceroute_block`) fed by the epoch-compiled
campaign engine, while the scalar ``add_probe_sample`` /
``add_traceroute`` calls remain as thin single-row wrappers so the
scalar prober and :meth:`CampaignCollector.merge` produce byte-identical
tables.  ``probe_columns()`` / ``traceroute_columns()`` are memoised per
buffer version instead of re-materialising the full arrays on every
analysis.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rss.operators import ServiceAddress, all_service_addresses
from repro.zone.zone import Zone

#: Order key used when an ingest call carries no campaign position (direct
#: use in tests/tools); sorts after every real (round, vp, addr) key.
_NO_ORDER_KEY: Tuple[float, ...] = (float("inf"),)


class CollectorSealedError(RuntimeError):
    """An ingest call arrived after the collector's buffers were sealed.

    :meth:`CampaignCollector.to_dataset` /
    :meth:`repro.data.Dataset.from_collector` share the collector's
    column buffers with the dataset (zero-copy).  An append after that
    point could silently reallocate or mutate arrays the dataset now
    owns, so it raises instead of losing data."""


@dataclass(frozen=True)
class ProbeSample:
    """One sampled probe row (reader-side view)."""

    vp_id: int
    ts: int
    address: ServiceAddress
    site_key: str
    rtt_ms: float
    direct_km: float
    closest_global_km: float
    via_peer: bool
    transit_asn: int = 0  # upstream ASN, 0 = peer/local path


@dataclass(frozen=True)
class TracerouteSample:
    """One sampled traceroute observation (reader-side view)."""

    vp_id: int
    ts: int
    address: ServiceAddress
    second_to_last_hop: Optional[str]


@dataclass(frozen=True)
class TransferObservation:
    """One recorded AXFR with enough context to re-validate it."""

    vp_id: int
    true_ts: int
    observed_ts: int  # VP clock view (skew applies here)
    address: ServiceAddress
    serial: int
    zone: Zone
    fault: str = ""  # "", "bitflip", "stale"
    fault_detail: str = ""


class _Interner:
    """String -> small int interning for columnar storage.

    Alongside each value the interner remembers the *order key* of its
    first occurrence — the (round, vp, addr) position in the campaign
    scan.  Shard interners diverge (each shard sees sites in its own
    order); the first-occurrence keys are what lets :meth:`merge`
    rebuild the exact interner a serial run would have produced.
    """

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self.values: List[str] = []
        self.first_keys: List[Tuple] = []

    def intern(self, value: str, order_key: Optional[Tuple] = None) -> int:
        idx = self._index.get(value)
        if idx is None:
            idx = len(self.values)
            self._index[value] = idx
            self.values.append(value)
            self.first_keys.append(_NO_ORDER_KEY if order_key is None else order_key)
        return idx

    def __getitem__(self, idx: int) -> str:
        return self.values[idx]

    def __len__(self) -> int:
        return len(self.values)


class _ColumnTable:
    """Growable columnar row storage over preallocated numpy buffers.

    Buffers double on exhaustion; ``version`` increments on every write
    so readers can memoise materialised views.  Scalar ``append`` and
    batch ``extend`` produce identical contents — appends write the same
    dtypes the batch path stores.
    """

    _INITIAL = 1024

    def __init__(self, spec: Sequence[Tuple[str, "np.dtype"]]) -> None:
        self._spec = list(spec)
        self._buffers: Dict[str, np.ndarray] = {
            name: np.empty(self._INITIAL, dtype=dtype) for name, dtype in self._spec
        }
        self._n = 0
        self.version = 0

    def __len__(self) -> int:
        return self._n

    @property
    def capacity(self) -> int:
        """Allocated rows per column (live rows occupy ``[0, len)``)."""
        return len(next(iter(self._buffers.values())))

    def _grow_to(self, needed: int) -> None:
        # Geometric doubling: total copy work over any append sequence
        # is O(rows), and a batch extend pays at most one reallocation.
        capacity = self.capacity
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in self._buffers:
            buf = np.empty(capacity, dtype=self._buffers[name].dtype)
            buf[: self._n] = self._buffers[name][: self._n]
            self._buffers[name] = buf

    def reserve(self, rows: int) -> None:
        """Pre-size for *rows* total rows (no-op when already allocated).

        Callers that know a chunk's row count up front (the epoch
        engine's block appends, spill reloads) skip the doubling ramp's
        intermediate copies."""
        self._grow_to(rows)

    def append(self, *values) -> None:
        """Append one row (values in column-spec order)."""
        self._grow_to(self._n + 1)
        for (name, _dtype), value in zip(self._spec, values):
            self._buffers[name][self._n] = value
        self._n += 1
        self.version += 1

    def extend(self, **arrays) -> None:
        """Batch-append equal-length column arrays."""
        if not arrays:
            return
        lengths = {len(a) for a in arrays.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged column block: lengths {sorted(lengths)}")
        count = lengths.pop()
        if count == 0:
            return
        if set(arrays) != {name for name, _ in self._spec}:
            raise ValueError(
                f"column block mismatch: got {sorted(arrays)}, "
                f"want {sorted(n for n, _ in self._spec)}"
            )
        self._grow_to(self._n + count)
        for name, values in arrays.items():
            self._buffers[name][self._n : self._n + count] = values
        self._n += count
        self.version += 1

    def column(self, name: str) -> np.ndarray:
        """Snapshot view of one column (length-stable; do not mutate)."""
        return self._buffers[name][: self._n]


class _FrozenColumnTable:
    """Read-only columnar rows over externally-owned (mmap-backed) arrays.

    A shard spill reload (:mod:`repro.data.spill`) adopts the on-disk
    column files zero-copy instead of re-appending rows into fresh
    buffers.  Columns may carry the *disk* dtypes (float32 for the RTT
    and distance columns) rather than the in-memory float64 — every read
    surface is unaffected: ``probe_columns`` downcasts to float32 anyway
    and :meth:`CampaignCollector.merge` upcasts on append, and
    float64→float32→float64→float32 equals float64→float32, so the
    round-trip is byte-invisible.  Appends raise: a spill-backed
    collector is a merge *input*, never an ingest target.
    """

    def __init__(
        self,
        spec: Sequence[Tuple[str, "np.dtype"]],
        columns: Dict[str, np.ndarray],
    ) -> None:
        self._spec = list(spec)
        names = {name for name, _ in self._spec}
        if set(columns) != names:
            raise ValueError(
                f"column set mismatch: got {sorted(columns)}, "
                f"want {sorted(names)}"
            )
        lengths = {len(array) for array in columns.values()}
        if len(lengths) > 1:
            raise ValueError(f"ragged columns: lengths {sorted(lengths)}")
        self._columns = dict(columns)
        self._n = lengths.pop() if lengths else 0
        self.version = 0

    def __len__(self) -> int:
        return self._n

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    def append(self, *values) -> None:
        raise CollectorSealedError(
            "spill-backed row tables are read-only merge inputs"
        )

    def extend(self, **arrays) -> None:
        raise CollectorSealedError(
            "spill-backed row tables are read-only merge inputs"
        )


class _MergedTransfers(Sequence):
    """K-way-merged transfer observations, materialized on first access.

    When :meth:`CampaignCollector.merge` combines spill-reloaded shards,
    their transfer sequences defer zone-pack unpickling until someone
    looks (``repro.data.spill.SpillTransfers``).  The merge must not be
    that someone: it stores only the interleaving — ``(shard, index)``
    in serial campaign order — and resolves real observation objects on
    the first element access, so a campaign whose consumers never read
    transfer content (the statistical analyses) never rehydrates zones.
    """

    def __init__(
        self, sources: List[Sequence], order: List[Tuple[int, int]]
    ) -> None:
        self._sources: Optional[List[Sequence]] = sources
        self._order: Optional[List[Tuple[int, int]]] = order
        self._items: Optional[List] = None

    def _materialize(self) -> List:
        if self._items is None:
            sources, order = self._sources, self._order
            self._items = [sources[shard][i] for shard, i in order]
            self._sources = self._order = None
        return self._items

    def __len__(self) -> int:
        if self._items is not None:
            return len(self._items)
        return len(self._order)

    def __getitem__(self, index):
        return self._materialize()[index]

    def __iter__(self):
        return iter(self._materialize())


#: Probe table schema (storage dtypes; ``probe_columns`` downcasts the
#: float columns to float32 exactly like the historical list storage).
_PROBE_SPEC = (
    ("vp", np.dtype(np.int32)),
    ("ts", np.dtype(np.int64)),
    ("addr", np.dtype(np.int16)),
    ("site", np.dtype(np.int32)),
    ("rtt", np.dtype(np.float64)),
    ("direct_km", np.dtype(np.float64)),
    ("closest_km", np.dtype(np.float64)),
    ("peer", np.dtype(bool)),
    ("transit", np.dtype(np.int32)),
)

_TRACEROUTE_SPEC = (
    ("vp", np.dtype(np.int32)),
    ("ts", np.dtype(np.int64)),
    ("addr", np.dtype(np.int16)),
    ("hop", np.dtype(np.int32)),
)


class CampaignCollector:
    """Accumulates a campaign's measurement output."""

    def __init__(self) -> None:
        self.addresses: List[ServiceAddress] = all_service_addresses()
        self.addr_index: Dict[str, int] = {
            sa.address: i for i, sa in enumerate(self.addresses)
        }
        self.sites = _Interner()
        self.hops = _Interner()

        # stability: (vp_id, addr_idx) -> [last_site_idx, changes, rounds]
        self._stability: Dict[Tuple[int, int], List[int]] = {}

        # sampled probe / traceroute rows (columnar; hop -1 = no reply)
        self._probes = _ColumnTable(_PROBE_SPEC)
        self._traceroutes = _ColumnTable(_TRACEROUTE_SPEC)
        self._probe_cols_cache: Optional[Dict[str, np.ndarray]] = None
        self._probe_cols_version = -1
        self._trace_cols_cache: Optional[Dict[str, np.ndarray]] = None
        self._trace_cols_version = -1

        # coverage: letter -> identity -> observation count, plus the
        # first-occurrence order key per (letter, identity) for merging
        self.identities: Dict[str, Dict[str, int]] = {}
        self._identity_order: Dict[Tuple[str, str], Tuple] = {}

        # transfers
        self.transfer_total = 0
        self.transfer_clean = 0
        self.transfers: List[TransferObservation] = []

        self.rounds_processed = 0
        self.queries_simulated = 0
        self._sealed = False

    # -- ingest -------------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        return self._sealed

    def seal(self) -> None:
        """Freeze the collector: further ingest calls raise.

        Called when a :class:`repro.data.Dataset` takes (zero-copy)
        ownership of the column buffers; idempotent."""
        self._sealed = True

    def _assert_unsealed(self) -> None:
        if self._sealed:
            raise CollectorSealedError(
                "collector is sealed: its buffers back a Dataset; "
                "appending now would corrupt or silently drop data"
            )

    def _order_key(self, vp_id: int, addr_idx: int) -> Tuple[int, int, int]:
        """Position of the current ingest call in the campaign scan.

        The prober increments :attr:`rounds_processed` after each round,
        so during round *r* it equals *r*; (round, vp, addr) is then the
        lexicographic position of the call in a serial rounds-outer,
        VPs-inner, addresses-innermost campaign scan.
        """
        return (self.rounds_processed, vp_id, addr_idx)

    def note_site(self, vp_id: int, addr_idx: int, site_key: str) -> None:
        """Per-round catchment observation; drives Figure 3."""
        self._assert_unsealed()
        site_idx = self.sites.intern(site_key, self._order_key(vp_id, addr_idx))
        state = self._stability.get((vp_id, addr_idx))
        if state is None:
            self._stability[(vp_id, addr_idx)] = [site_idx, 0, 1]
            return
        if state[0] != site_idx:
            state[1] += 1
            state[0] = site_idx
        state[2] += 1

    def note_identity(
        self,
        letter: str,
        identity: str,
        vp_id: Optional[int] = None,
        addr_idx: Optional[int] = None,
    ) -> None:
        """A CHAOS identity answer (coverage input)."""
        self._assert_unsealed()
        bucket = self.identities.setdefault(letter, {})
        if identity not in bucket:
            self._identity_order[(letter, identity)] = (
                _NO_ORDER_KEY
                if vp_id is None or addr_idx is None
                else self._order_key(vp_id, addr_idx)
            )
        bucket[identity] = bucket.get(identity, 0) + 1

    def add_probe_sample(
        self,
        vp_id: int,
        ts: int,
        addr_idx: int,
        site_key: str,
        rtt_ms: float,
        direct_km: float,
        closest_global_km: float,
        via_peer: bool,
        transit_asn: int = 0,
    ) -> None:
        self._assert_unsealed()
        self._probes.append(
            vp_id,
            ts,
            addr_idx,
            self.sites.intern(site_key, self._order_key(vp_id, addr_idx)),
            rtt_ms,
            direct_km,
            closest_global_km,
            via_peer,
            transit_asn,
        )

    def add_probe_block(
        self,
        vp: np.ndarray,
        ts: np.ndarray,
        addr: np.ndarray,
        site: np.ndarray,
        rtt: np.ndarray,
        direct_km: np.ndarray,
        closest_km: np.ndarray,
        peer: np.ndarray,
        transit: np.ndarray,
    ) -> None:
        """Batch-append probe rows.

        ``site`` carries *already interned* site indices — block callers
        (the epoch engine, vectorised merges) intern up front with
        explicit first-occurrence keys.
        """
        self._assert_unsealed()
        self._probes.extend(
            vp=vp,
            ts=ts,
            addr=addr,
            site=site,
            rtt=rtt,
            direct_km=direct_km,
            closest_km=closest_km,
            peer=peer,
            transit=transit,
        )

    def add_traceroute(
        self, vp_id: int, ts: int, addr_idx: int, second_to_last_hop: Optional[str]
    ) -> None:
        self._assert_unsealed()
        self._traceroutes.append(
            vp_id,
            ts,
            addr_idx,
            -1
            if second_to_last_hop is None
            else self.hops.intern(second_to_last_hop, self._order_key(vp_id, addr_idx)),
        )

    def add_traceroute_block(
        self, vp: np.ndarray, ts: np.ndarray, addr: np.ndarray, hop: np.ndarray
    ) -> None:
        """Batch-append traceroute rows (``hop`` pre-interned, -1 = no
        reply)."""
        self._assert_unsealed()
        self._traceroutes.extend(vp=vp, ts=ts, addr=addr, hop=hop)

    def count_transfer(self, clean: bool) -> None:
        self._assert_unsealed()
        self.transfer_total += 1
        if clean:
            self.transfer_clean += 1

    def add_transfer_observation(self, obs: TransferObservation) -> None:
        self._assert_unsealed()
        self.transfers.append(obs)

    # -- read-side ------------------------------------------------------------------

    def change_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """(vp_id, addr_idx) -> (changes, rounds observed)."""
        return {
            key: (state[1], state[2]) for key, state in self._stability.items()
        }

    def probe_columns(self) -> Dict[str, np.ndarray]:
        """The sampled probe table as numpy columns.

        Memoised per buffer version: repeated analysis calls share one
        materialisation until the next append invalidates it.
        """
        if (
            self._probe_cols_cache is None
            or self._probe_cols_version != self._probes.version
        ):
            self._probe_cols_cache = {
                "vp": self._probes.column("vp"),
                "ts": self._probes.column("ts"),
                "addr": self._probes.column("addr"),
                "site": self._probes.column("site"),
                "rtt": self._probes.column("rtt").astype(np.float32),
                "direct_km": self._probes.column("direct_km").astype(np.float32),
                "closest_km": self._probes.column("closest_km").astype(np.float32),
                "peer": self._probes.column("peer"),
                "transit": self._probes.column("transit"),
            }
            self._probe_cols_version = self._probes.version
        return self._probe_cols_cache

    def traceroute_columns(self) -> Dict[str, np.ndarray]:
        """The sampled traceroute table as numpy columns (memoised)."""
        if (
            self._trace_cols_cache is None
            or self._trace_cols_version != self._traceroutes.version
        ):
            self._trace_cols_cache = {
                "vp": self._traceroutes.column("vp"),
                "ts": self._traceroutes.column("ts"),
                "addr": self._traceroutes.column("addr"),
                "hop": self._traceroutes.column("hop"),
            }
            self._trace_cols_version = self._traceroutes.version
        return self._trace_cols_cache

    def probe_samples(self) -> List[ProbeSample]:
        """Sampled probe rows as objects (small datasets / tests only)."""
        t = self._probes
        return [
            ProbeSample(
                vp_id=int(t.column("vp")[i]),
                ts=int(t.column("ts")[i]),
                address=self.addresses[int(t.column("addr")[i])],
                site_key=self.sites[int(t.column("site")[i])],
                rtt_ms=float(t.column("rtt")[i]),
                direct_km=float(t.column("direct_km")[i]),
                closest_global_km=float(t.column("closest_km")[i]),
                via_peer=bool(t.column("peer")[i]),
                transit_asn=int(t.column("transit")[i]),
            )
            for i in range(len(t))
        ]

    def traceroute_samples(self) -> List[TracerouteSample]:
        """Sampled traceroute rows as objects (small datasets / tests)."""
        t = self._traceroutes
        return [
            TracerouteSample(
                vp_id=int(t.column("vp")[i]),
                ts=int(t.column("ts")[i]),
                address=self.addresses[int(t.column("addr")[i])],
                second_to_last_hop=(
                    None
                    if t.column("hop")[i] < 0
                    else self.hops[int(t.column("hop")[i])]
                ),
            )
            for i in range(len(t))
        ]

    def summary(self) -> Dict[str, int]:
        """Dataset-size fingerprint (the paper's §4.1 counts analogue)."""
        return {
            "rounds": self.rounds_processed,
            "queries": self.queries_simulated,
            "probe_samples": len(self._probes),
            "traceroute_samples": len(self._traceroutes),
            "transfers": self.transfer_total,
            "transfer_observations": len(self.transfers),
            "stability_pairs": len(self._stability),
        }

    # -- checkpoint state codec -------------------------------------------------------

    @staticmethod
    def _encode_key(key: Tuple) -> Optional[List[int]]:
        return None if key == _NO_ORDER_KEY else [int(k) for k in key]

    @staticmethod
    def _decode_key(key: Optional[List[int]]) -> Tuple:
        return _NO_ORDER_KEY if key is None else tuple(int(k) for k in key)

    def state_dict(self) -> Dict:
        """JSON-serialisable snapshot of the collector's aggregate state.

        Covers everything *except* the columnar row tables and transfer
        observations — those live in sealed chunks on disk; the streaming
        checkpoint stores this dict plus per-table row counts so a
        resumed run can rebuild the collector exactly.
        """
        return {
            "sites": [
                [value, self._encode_key(key)]
                for value, key in zip(self.sites.values, self.sites.first_keys)
            ],
            "hops": [
                [value, self._encode_key(key)]
                for value, key in zip(self.hops.values, self.hops.first_keys)
            ],
            "identities": [
                [
                    letter,
                    identity,
                    int(count),
                    self._encode_key(
                        self._identity_order.get((letter, identity), _NO_ORDER_KEY)
                    ),
                ]
                for letter, bucket in self.identities.items()
                for identity, count in bucket.items()
            ],
            "stability": [
                [int(vp), int(addr), self.sites[state[0]], int(state[1]), int(state[2])]
                for (vp, addr), state in self._stability.items()
            ],
            "rounds_processed": int(self.rounds_processed),
            "queries_simulated": int(self.queries_simulated),
            "transfer_total": int(self.transfer_total),
            "transfer_clean": int(self.transfer_clean),
            "rows": {
                "probes": len(self._probes),
                "traceroutes": len(self._traceroutes),
                "transfer_observations": len(self.transfers),
            },
        }

    def restore_state_dict(self, state: Dict) -> None:
        """Restore :meth:`state_dict` output into this (empty) collector.

        Row tables are *not* restored — they stay on disk in sealed
        chunks; only the aggregate state (interners, identity counts,
        stability counters, totals) comes back.
        """
        if len(self.sites) or len(self._probes) or self._stability:
            raise ValueError("restore_state_dict requires an empty collector")
        for value, key in state["sites"]:
            self.sites.intern(value, self._decode_key(key))
        for value, key in state["hops"]:
            self.hops.intern(value, self._decode_key(key))
        for letter, identity, count, key in state["identities"]:
            self.identities.setdefault(letter, {})[identity] = int(count)
            self._identity_order[(letter, identity)] = self._decode_key(key)
        for vp, addr, site_value, changes, rounds in state["stability"]:
            site_idx = self.sites._index[site_value]
            self._stability[(int(vp), int(addr))] = [site_idx, int(changes), int(rounds)]
        self.rounds_processed = int(state["rounds_processed"])
        self.queries_simulated = int(state["queries_simulated"])
        self.transfer_total = int(state["transfer_total"])
        self.transfer_clean = int(state["transfer_clean"])

    def attach_rows(
        self,
        probes: Dict[str, np.ndarray],
        traceroutes: Dict[str, np.ndarray],
        transfers: Sequence,
    ) -> None:
        """Adopt externally-owned row columns zero-copy (spill reload).

        The inverse of :meth:`drain_rows` for a collector whose aggregate
        state came back through :meth:`restore_state_dict`: row tables
        become read-only views over the given arrays (typically
        ``np.memmap`` columns of a shard spill) without copying a byte.
        The result is a full-fidelity merge input for :meth:`merge`.
        """
        self._assert_unsealed()
        if len(self._probes) or len(self._traceroutes) or self.transfers:
            raise ValueError("attach_rows requires empty row tables")
        self._probes = _FrozenColumnTable(_PROBE_SPEC, probes)
        self._traceroutes = _FrozenColumnTable(_TRACEROUTE_SPEC, traceroutes)
        # A lazily-materializing sequence (spill reload) is adopted
        # as-is — copying it into a list would force rehydration now.
        self.transfers = (
            transfers
            if hasattr(transfers, "order_keys")
            else list(transfers)
        )
        self._probe_cols_cache = None
        self._probe_cols_version = -1
        self._trace_cols_cache = None
        self._trace_cols_version = -1

    def drain_rows(
        self,
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, np.ndarray], List[TransferObservation]]:
        """Detach the row tables and transfer list, leaving them empty.

        The streaming campaign calls this after sealing each chunk: the
        returned columns/observations are the chunk's rows (everything
        appended since the previous drain), and the collector keeps only
        its aggregate state — which is what bounds streamed memory by
        chunk size instead of campaign size.  Aggregates (interners,
        stability, identities, totals) are untouched.
        """
        self._assert_unsealed()
        probes = {name: self._probes.column(name) for name, _ in _PROBE_SPEC}
        traceroutes = {
            name: self._traceroutes.column(name) for name, _ in _TRACEROUTE_SPEC
        }
        transfers = self.transfers
        self._probes = _ColumnTable(_PROBE_SPEC)
        self._traceroutes = _ColumnTable(_TRACEROUTE_SPEC)
        self.transfers = []
        self._probe_cols_cache = None
        self._probe_cols_version = -1
        self._trace_cols_cache = None
        self._trace_cols_version = -1
        return probes, traceroutes, transfers

    def to_dataset(self, config=None):
        """Seal this collector's buffers into a typed
        :class:`repro.data.Dataset` (column arrays are shared, not
        copied).  *config* — the study's config, when available —
        becomes the dataset's study fingerprint."""
        from repro.data import Dataset

        return Dataset.from_collector(self, config)

    # -- shard merging ----------------------------------------------------------------

    @classmethod
    def merge(cls, shards: Sequence["CampaignCollector"]) -> "CampaignCollector":
        """Recombine per-shard collectors into the serial-run collector.

        The campaign is shardable by VP: every shard probes a disjoint VP
        subset over the *full* schedule.  Given those shard collectors,
        this rebuilds — deterministically and independent of shard count
        or ordering — the exact collector a serial run over the union of
        VPs produces:

        * interners are rebuilt in global first-occurrence order (the
          minimum (round, vp, addr) key across shards per value), and
          every stored index is remapped,
        * columnar probe/traceroute tables are recombined with a stable
          lexicographic sort on (ts, vp) — a (ts, vp) pair belongs to
          exactly one shard and rows within a shard are already in
          campaign-scan order, so the sort *is* the k-way merge — and
          transfer observations are k-way merged the same way,
        * stability counters and identity counts are disjoint unions /
          sums, re-inserted in serial first-occurrence order.
        """
        if not shards:
            return cls()
        rounds = {s.rounds_processed for s in shards}
        if len(rounds) != 1:
            raise ValueError(
                f"shards processed different round counts: {sorted(rounds)}"
            )
        addresses = [sa.address for sa in shards[0].addresses]
        for shard in shards[1:]:
            if [sa.address for sa in shard.addresses] != addresses:
                raise ValueError("shards disagree on the service address set")

        merged = cls()
        merged.rounds_processed = rounds.pop()
        merged.queries_simulated = sum(s.queries_simulated for s in shards)
        merged.transfer_total = sum(s.transfer_total for s in shards)
        merged.transfer_clean = sum(s.transfer_clean for s in shards)

        site_maps = _merge_interners(merged.sites, [s.sites for s in shards])
        hop_maps = _merge_interners(merged.hops, [s.hops for s in shards])

        # Stability: VP partitioning makes the pair dicts disjoint; every
        # pair is created in round 0, so serial insertion order is
        # (vp, addr) ascending.
        states: List[Tuple[Tuple[int, int], int, List[int]]] = []
        for shard_no, shard in enumerate(shards):
            for pair, state in shard._stability.items():
                states.append((pair, shard_no, state))
        states.sort(key=lambda item: item[0])
        for pair, shard_no, state in states:
            if pair in merged._stability:
                raise ValueError(f"shards overlap on (vp, addr) pair {pair}")
            merged._stability[pair] = [site_maps[shard_no][state[0]], state[1], state[2]]

        # Probe/traceroute rows: remap each shard's interned codes, then
        # recombine columnar-ly — concatenation plus a stable (ts, vp)
        # sort reproduces the serial row order (see docstring).  The
        # recombination primitive is shared with the streaming chunk
        # stitcher (repro.data.columnar).
        from repro.data.columnar import merge_shard_columns, remap_lookup

        probe_parts: List[Dict[str, np.ndarray]] = []
        for shard_no, shard in enumerate(shards):
            part = {
                name: shard._probes.column(name) for name, _ in _PROBE_SPEC
            }
            if len(part["site"]):
                part["site"] = remap_lookup(site_maps[shard_no])[part["site"]]
            probe_parts.append(part)
        probe_all = merge_shard_columns(
            [name for name, _ in _PROBE_SPEC], probe_parts
        )
        if len(probe_all["ts"]):
            merged._probes.extend(**probe_all)

        trace_parts: List[Dict[str, np.ndarray]] = []
        for shard_no, shard in enumerate(shards):
            part = {
                name: shard._traceroutes.column(name)
                for name, _ in _TRACEROUTE_SPEC
            }
            hop = part["hop"]
            if len(hop):
                lookup = remap_lookup(hop_maps[shard_no])
                part["hop"] = np.where(hop < 0, -1, lookup[np.maximum(hop, 0)])
            trace_parts.append(part)
        trace_all = merge_shard_columns(
            [name for name, _ in _TRACEROUTE_SPEC], trace_parts
        )
        if len(trace_all["ts"]):
            merged._traceroutes.extend(**trace_all)

        # Identities: counts sum; dict creation order follows the global
        # first (round, vp, addr) occurrence per (letter, identity).
        first_seen: Dict[Tuple[str, str], Tuple] = {}
        counts: Dict[Tuple[str, str], int] = {}
        for shard in shards:
            for letter, bucket in shard.identities.items():
                for identity, count in bucket.items():
                    key = (letter, identity)
                    order = shard._identity_order.get(key, _NO_ORDER_KEY)
                    if key not in first_seen or order < first_seen[key]:
                        first_seen[key] = order
                    counts[key] = counts.get(key, 0) + count
        for letter, identity in sorted(first_seen, key=lambda k: (first_seen[k], k)):
            merged.identities.setdefault(letter, {})[identity] = counts[
                (letter, identity)
            ]
            merged._identity_order[(letter, identity)] = first_seen[(letter, identity)]

        def transfer_rows(shard_no: int, shard: "CampaignCollector"):
            keys = getattr(shard.transfers, "order_keys", None)
            if keys is not None:
                # Spill-reloaded shards expose ordering keys without
                # materializing observation objects (zone unpickling
                # stays deferred until a consumer actually looks).
                for i, (true_ts, vp_id) in enumerate(keys()):
                    yield (true_ts, vp_id, shard_no, i)
            else:
                for i, obs in enumerate(shard.transfers):
                    yield (obs.true_ts, obs.vp_id, shard_no, i)

        order = [
            (shard_no, i)
            for _ts, _vp, shard_no, i in heapq.merge(
                *(transfer_rows(n, s) for n, s in enumerate(shards))
            )
        ]
        if any(hasattr(s.transfers, "order_keys") for s in shards):
            merged.transfers = _MergedTransfers(
                [s.transfers for s in shards], order
            )
        else:
            merged.transfers = [
                shards[shard_no].transfers[i] for shard_no, i in order
            ]

        return merged


def _merge_interners(
    target: _Interner, shard_interners: Sequence[_Interner]
) -> List[Dict[int, int]]:
    """Populate *target* in global first-occurrence order; return, per
    shard, the old-index -> merged-index remapping table."""
    best: Dict[str, Tuple] = {}
    for interner in shard_interners:
        for idx, value in enumerate(interner.values):
            key = interner.first_keys[idx]
            if value not in best or key < best[value]:
                best[value] = key
    for value in sorted(best, key=lambda v: (best[v], v)):
        target.intern(value, best[value])
    return [
        {idx: target._index[value] for idx, value in enumerate(interner.values)}
        for interner in shard_interners
    ]
