"""Streaming campaign data collection.

A paper-scale campaign produces ~158 M probe events; storing each as an
object would not fit in memory.  The collector therefore keeps:

* **stability counters** — per (VP, service address): consecutive-round
  site-change counts (all the Figure 3 analysis needs),
* **sampled probe rows** — columnar vp/ts/address/site/RTT/distance data
  (Figures 5, 6, 14, 15 are statistical, sampling is sufficient),
* **sampled traceroute rows** — second-to-last hop observations (RQ1),
* **observed identities** — per letter, the CHAOS identity strings seen
  (coverage, Tables 1/4),
* **transfer observations** — aggregate counts for clean AXFRs plus full
  zone references for the interesting ones (faulted, stale, skewed-clock
  VPs) that the ZONEMD audit (Table 2) validates.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.rss.operators import ServiceAddress, all_service_addresses
from repro.zone.zone import Zone

#: Order key used when an ingest call carries no campaign position (direct
#: use in tests/tools); sorts after every real (round, vp, addr) key.
_NO_ORDER_KEY: Tuple[float, ...] = (float("inf"),)


@dataclass(frozen=True)
class ProbeSample:
    """One sampled probe row (reader-side view)."""

    vp_id: int
    ts: int
    address: ServiceAddress
    site_key: str
    rtt_ms: float
    direct_km: float
    closest_global_km: float
    via_peer: bool
    transit_asn: int = 0  # upstream ASN, 0 = peer/local path


@dataclass(frozen=True)
class TracerouteSample:
    """One sampled traceroute observation (reader-side view)."""

    vp_id: int
    ts: int
    address: ServiceAddress
    second_to_last_hop: Optional[str]


@dataclass(frozen=True)
class TransferObservation:
    """One recorded AXFR with enough context to re-validate it."""

    vp_id: int
    true_ts: int
    observed_ts: int  # VP clock view (skew applies here)
    address: ServiceAddress
    serial: int
    zone: Zone
    fault: str = ""  # "", "bitflip", "stale"
    fault_detail: str = ""


class _Interner:
    """String -> small int interning for columnar storage.

    Alongside each value the interner remembers the *order key* of its
    first occurrence — the (round, vp, addr) position in the campaign
    scan.  Shard interners diverge (each shard sees sites in its own
    order); the first-occurrence keys are what lets :meth:`merge`
    rebuild the exact interner a serial run would have produced.
    """

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self.values: List[str] = []
        self.first_keys: List[Tuple] = []

    def intern(self, value: str, order_key: Optional[Tuple] = None) -> int:
        idx = self._index.get(value)
        if idx is None:
            idx = len(self.values)
            self._index[value] = idx
            self.values.append(value)
            self.first_keys.append(_NO_ORDER_KEY if order_key is None else order_key)
        return idx

    def __getitem__(self, idx: int) -> str:
        return self.values[idx]

    def __len__(self) -> int:
        return len(self.values)


class CampaignCollector:
    """Accumulates a campaign's measurement output."""

    def __init__(self) -> None:
        self.addresses: List[ServiceAddress] = all_service_addresses()
        self.addr_index: Dict[str, int] = {
            sa.address: i for i, sa in enumerate(self.addresses)
        }
        self.sites = _Interner()
        self.hops = _Interner()

        # stability: (vp_id, addr_idx) -> [last_site_idx, changes, rounds]
        self._stability: Dict[Tuple[int, int], List[int]] = {}

        # sampled probe rows (columnar)
        self._p_vp: List[int] = []
        self._p_ts: List[int] = []
        self._p_addr: List[int] = []
        self._p_site: List[int] = []
        self._p_rtt: List[float] = []
        self._p_direct: List[float] = []
        self._p_closest: List[float] = []
        self._p_peer: List[bool] = []
        self._p_transit: List[int] = []  # upstream ASN, 0 = peer/local path

        # sampled traceroute rows (columnar; hop -1 = no reply)
        self._t_vp: List[int] = []
        self._t_ts: List[int] = []
        self._t_addr: List[int] = []
        self._t_hop: List[int] = []

        # coverage: letter -> identity -> observation count, plus the
        # first-occurrence order key per (letter, identity) for merging
        self.identities: Dict[str, Dict[str, int]] = {}
        self._identity_order: Dict[Tuple[str, str], Tuple] = {}

        # transfers
        self.transfer_total = 0
        self.transfer_clean = 0
        self.transfers: List[TransferObservation] = []

        self.rounds_processed = 0
        self.queries_simulated = 0

    # -- ingest -------------------------------------------------------------------

    def _order_key(self, vp_id: int, addr_idx: int) -> Tuple[int, int, int]:
        """Position of the current ingest call in the campaign scan.

        The prober increments :attr:`rounds_processed` after each round,
        so during round *r* it equals *r*; (round, vp, addr) is then the
        lexicographic position of the call in a serial rounds-outer,
        VPs-inner, addresses-innermost campaign scan.
        """
        return (self.rounds_processed, vp_id, addr_idx)

    def note_site(self, vp_id: int, addr_idx: int, site_key: str) -> None:
        """Per-round catchment observation; drives Figure 3."""
        site_idx = self.sites.intern(site_key, self._order_key(vp_id, addr_idx))
        state = self._stability.get((vp_id, addr_idx))
        if state is None:
            self._stability[(vp_id, addr_idx)] = [site_idx, 0, 1]
            return
        if state[0] != site_idx:
            state[1] += 1
            state[0] = site_idx
        state[2] += 1

    def note_identity(
        self,
        letter: str,
        identity: str,
        vp_id: Optional[int] = None,
        addr_idx: Optional[int] = None,
    ) -> None:
        """A CHAOS identity answer (coverage input)."""
        bucket = self.identities.setdefault(letter, {})
        if identity not in bucket:
            self._identity_order[(letter, identity)] = (
                _NO_ORDER_KEY
                if vp_id is None or addr_idx is None
                else self._order_key(vp_id, addr_idx)
            )
        bucket[identity] = bucket.get(identity, 0) + 1

    def add_probe_sample(
        self,
        vp_id: int,
        ts: int,
        addr_idx: int,
        site_key: str,
        rtt_ms: float,
        direct_km: float,
        closest_global_km: float,
        via_peer: bool,
        transit_asn: int = 0,
    ) -> None:
        self._p_vp.append(vp_id)
        self._p_ts.append(ts)
        self._p_addr.append(addr_idx)
        self._p_site.append(self.sites.intern(site_key, self._order_key(vp_id, addr_idx)))
        self._p_rtt.append(rtt_ms)
        self._p_direct.append(direct_km)
        self._p_closest.append(closest_global_km)
        self._p_peer.append(via_peer)
        self._p_transit.append(transit_asn)

    def add_traceroute(
        self, vp_id: int, ts: int, addr_idx: int, second_to_last_hop: Optional[str]
    ) -> None:
        self._t_vp.append(vp_id)
        self._t_ts.append(ts)
        self._t_addr.append(addr_idx)
        self._t_hop.append(
            -1
            if second_to_last_hop is None
            else self.hops.intern(second_to_last_hop, self._order_key(vp_id, addr_idx))
        )

    def count_transfer(self, clean: bool) -> None:
        self.transfer_total += 1
        if clean:
            self.transfer_clean += 1

    def add_transfer_observation(self, obs: TransferObservation) -> None:
        self.transfers.append(obs)

    # -- read-side ------------------------------------------------------------------

    def change_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """(vp_id, addr_idx) -> (changes, rounds observed)."""
        return {
            key: (state[1], state[2]) for key, state in self._stability.items()
        }

    def probe_columns(self) -> Dict[str, np.ndarray]:
        """The sampled probe table as numpy columns."""
        return {
            "vp": np.asarray(self._p_vp, dtype=np.int32),
            "ts": np.asarray(self._p_ts, dtype=np.int64),
            "addr": np.asarray(self._p_addr, dtype=np.int16),
            "site": np.asarray(self._p_site, dtype=np.int32),
            "rtt": np.asarray(self._p_rtt, dtype=np.float32),
            "direct_km": np.asarray(self._p_direct, dtype=np.float32),
            "closest_km": np.asarray(self._p_closest, dtype=np.float32),
            "peer": np.asarray(self._p_peer, dtype=bool),
            "transit": np.asarray(self._p_transit, dtype=np.int32),
        }

    def traceroute_columns(self) -> Dict[str, np.ndarray]:
        """The sampled traceroute table as numpy columns."""
        return {
            "vp": np.asarray(self._t_vp, dtype=np.int32),
            "ts": np.asarray(self._t_ts, dtype=np.int64),
            "addr": np.asarray(self._t_addr, dtype=np.int16),
            "hop": np.asarray(self._t_hop, dtype=np.int32),
        }

    def probe_samples(self) -> List[ProbeSample]:
        """Sampled probe rows as objects (small datasets / tests only)."""
        return [
            ProbeSample(
                vp_id=self._p_vp[i],
                ts=self._p_ts[i],
                address=self.addresses[self._p_addr[i]],
                site_key=self.sites[self._p_site[i]],
                rtt_ms=self._p_rtt[i],
                direct_km=self._p_direct[i],
                closest_global_km=self._p_closest[i],
                via_peer=self._p_peer[i],
                transit_asn=self._p_transit[i],
            )
            for i in range(len(self._p_vp))
        ]

    def traceroute_samples(self) -> List[TracerouteSample]:
        """Sampled traceroute rows as objects (small datasets / tests)."""
        return [
            TracerouteSample(
                vp_id=self._t_vp[i],
                ts=self._t_ts[i],
                address=self.addresses[self._t_addr[i]],
                second_to_last_hop=(
                    None if self._t_hop[i] < 0 else self.hops[self._t_hop[i]]
                ),
            )
            for i in range(len(self._t_vp))
        ]

    def summary(self) -> Dict[str, int]:
        """Dataset-size fingerprint (the paper's §4.1 counts analogue)."""
        return {
            "rounds": self.rounds_processed,
            "queries": self.queries_simulated,
            "probe_samples": len(self._p_vp),
            "traceroute_samples": len(self._t_vp),
            "transfers": self.transfer_total,
            "transfer_observations": len(self.transfers),
            "stability_pairs": len(self._stability),
        }

    # -- shard merging ----------------------------------------------------------------

    @classmethod
    def merge(cls, shards: Sequence["CampaignCollector"]) -> "CampaignCollector":
        """Recombine per-shard collectors into the serial-run collector.

        The campaign is shardable by VP: every shard probes a disjoint VP
        subset over the *full* schedule.  Given those shard collectors,
        this rebuilds — deterministically and independent of shard count
        or ordering — the exact collector a serial run over the union of
        VPs produces:

        * interners are rebuilt in global first-occurrence order (the
          minimum (round, vp, addr) key across shards per value), and
          every stored index is remapped,
        * columnar probe/traceroute tables and transfer observations are
          k-way merged back into campaign-scan order on (ts, vp),
        * stability counters and identity counts are disjoint unions /
          sums, re-inserted in serial first-occurrence order.
        """
        if not shards:
            return cls()
        rounds = {s.rounds_processed for s in shards}
        if len(rounds) != 1:
            raise ValueError(
                f"shards processed different round counts: {sorted(rounds)}"
            )
        addresses = [sa.address for sa in shards[0].addresses]
        for shard in shards[1:]:
            if [sa.address for sa in shard.addresses] != addresses:
                raise ValueError("shards disagree on the service address set")

        merged = cls()
        merged.rounds_processed = rounds.pop()
        merged.queries_simulated = sum(s.queries_simulated for s in shards)
        merged.transfer_total = sum(s.transfer_total for s in shards)
        merged.transfer_clean = sum(s.transfer_clean for s in shards)

        site_maps = _merge_interners(merged.sites, [s.sites for s in shards])
        hop_maps = _merge_interners(merged.hops, [s.hops for s in shards])

        # Stability: VP partitioning makes the pair dicts disjoint; every
        # pair is created in round 0, so serial insertion order is
        # (vp, addr) ascending.
        states: List[Tuple[Tuple[int, int], int, List[int]]] = []
        for shard_no, shard in enumerate(shards):
            for pair, state in shard._stability.items():
                states.append((pair, shard_no, state))
        states.sort(key=lambda item: item[0])
        for pair, shard_no, state in states:
            if pair in merged._stability:
                raise ValueError(f"shards overlap on (vp, addr) pair {pair}")
            merged._stability[pair] = [site_maps[shard_no][state[0]], state[1], state[2]]

        # Probe rows: within a shard rows are already in campaign-scan
        # order, and a (ts, vp) pair belongs to exactly one shard, so a
        # k-way merge on (ts, vp) restores the serial row order.
        def probe_rows(shard_no: int, shard: "CampaignCollector"):
            for i in range(len(shard._p_vp)):
                yield (shard._p_ts[i], shard._p_vp[i], shard_no, i)

        for _ts, _vp, shard_no, i in heapq.merge(
            *(probe_rows(n, s) for n, s in enumerate(shards))
        ):
            shard = shards[shard_no]
            merged._p_vp.append(shard._p_vp[i])
            merged._p_ts.append(shard._p_ts[i])
            merged._p_addr.append(shard._p_addr[i])
            merged._p_site.append(site_maps[shard_no][shard._p_site[i]])
            merged._p_rtt.append(shard._p_rtt[i])
            merged._p_direct.append(shard._p_direct[i])
            merged._p_closest.append(shard._p_closest[i])
            merged._p_peer.append(shard._p_peer[i])
            merged._p_transit.append(shard._p_transit[i])

        def traceroute_rows(shard_no: int, shard: "CampaignCollector"):
            for i in range(len(shard._t_vp)):
                yield (shard._t_ts[i], shard._t_vp[i], shard_no, i)

        for _ts, _vp, shard_no, i in heapq.merge(
            *(traceroute_rows(n, s) for n, s in enumerate(shards))
        ):
            shard = shards[shard_no]
            merged._t_vp.append(shard._t_vp[i])
            merged._t_ts.append(shard._t_ts[i])
            merged._t_addr.append(shard._t_addr[i])
            hop = shard._t_hop[i]
            merged._t_hop.append(-1 if hop < 0 else hop_maps[shard_no][hop])

        # Identities: counts sum; dict creation order follows the global
        # first (round, vp, addr) occurrence per (letter, identity).
        first_seen: Dict[Tuple[str, str], Tuple] = {}
        counts: Dict[Tuple[str, str], int] = {}
        for shard in shards:
            for letter, bucket in shard.identities.items():
                for identity, count in bucket.items():
                    key = (letter, identity)
                    order = shard._identity_order.get(key, _NO_ORDER_KEY)
                    if key not in first_seen or order < first_seen[key]:
                        first_seen[key] = order
                    counts[key] = counts.get(key, 0) + count
        for letter, identity in sorted(first_seen, key=lambda k: (first_seen[k], k)):
            merged.identities.setdefault(letter, {})[identity] = counts[
                (letter, identity)
            ]
            merged._identity_order[(letter, identity)] = first_seen[(letter, identity)]

        def transfer_rows(shard_no: int, shard: "CampaignCollector"):
            for i, obs in enumerate(shard.transfers):
                yield (obs.true_ts, obs.vp_id, shard_no, i)

        for _ts, _vp, shard_no, i in heapq.merge(
            *(transfer_rows(n, s) for n, s in enumerate(shards))
        ):
            merged.transfers.append(shards[shard_no].transfers[i])

        return merged


def _merge_interners(
    target: _Interner, shard_interners: Sequence[_Interner]
) -> List[Dict[int, int]]:
    """Populate *target* in global first-occurrence order; return, per
    shard, the old-index -> merged-index remapping table."""
    best: Dict[str, Tuple] = {}
    for interner in shard_interners:
        for idx, value in enumerate(interner.values):
            key = interner.first_keys[idx]
            if value not in best or key < best[value]:
                best[value] = key
    for value in sorted(best, key=lambda v: (best[v], v)):
        target.intern(value, best[value])
    return [
        {idx: target._index[value] for idx, value in enumerate(interner.values)}
        for interner in shard_interners
    ]
