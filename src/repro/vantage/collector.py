"""Streaming campaign data collection.

A paper-scale campaign produces ~158 M probe events; storing each as an
object would not fit in memory.  The collector therefore keeps:

* **stability counters** — per (VP, service address): consecutive-round
  site-change counts (all the Figure 3 analysis needs),
* **sampled probe rows** — columnar vp/ts/address/site/RTT/distance data
  (Figures 5, 6, 14, 15 are statistical, sampling is sufficient),
* **sampled traceroute rows** — second-to-last hop observations (RQ1),
* **observed identities** — per letter, the CHAOS identity strings seen
  (coverage, Tables 1/4),
* **transfer observations** — aggregate counts for clean AXFRs plus full
  zone references for the interesting ones (faulted, stale, skewed-clock
  VPs) that the ZONEMD audit (Table 2) validates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.rss.operators import ServiceAddress, all_service_addresses
from repro.zone.zone import Zone


@dataclass(frozen=True)
class ProbeSample:
    """One sampled probe row (reader-side view)."""

    vp_id: int
    ts: int
    address: ServiceAddress
    site_key: str
    rtt_ms: float
    direct_km: float
    closest_global_km: float
    via_peer: bool


@dataclass(frozen=True)
class TracerouteSample:
    """One sampled traceroute observation (reader-side view)."""

    vp_id: int
    ts: int
    address: ServiceAddress
    second_to_last_hop: Optional[str]


@dataclass(frozen=True)
class TransferObservation:
    """One recorded AXFR with enough context to re-validate it."""

    vp_id: int
    true_ts: int
    observed_ts: int  # VP clock view (skew applies here)
    address: ServiceAddress
    serial: int
    zone: Zone
    fault: str = ""  # "", "bitflip", "stale"
    fault_detail: str = ""


class _Interner:
    """String -> small int interning for columnar storage."""

    def __init__(self) -> None:
        self._index: Dict[str, int] = {}
        self.values: List[str] = []

    def intern(self, value: str) -> int:
        idx = self._index.get(value)
        if idx is None:
            idx = len(self.values)
            self._index[value] = idx
            self.values.append(value)
        return idx

    def __getitem__(self, idx: int) -> str:
        return self.values[idx]

    def __len__(self) -> int:
        return len(self.values)


class CampaignCollector:
    """Accumulates a campaign's measurement output."""

    def __init__(self) -> None:
        self.addresses: List[ServiceAddress] = all_service_addresses()
        self.addr_index: Dict[str, int] = {
            sa.address: i for i, sa in enumerate(self.addresses)
        }
        self.sites = _Interner()
        self.hops = _Interner()

        # stability: (vp_id, addr_idx) -> [last_site_idx, changes, rounds]
        self._stability: Dict[Tuple[int, int], List[int]] = {}

        # sampled probe rows (columnar)
        self._p_vp: List[int] = []
        self._p_ts: List[int] = []
        self._p_addr: List[int] = []
        self._p_site: List[int] = []
        self._p_rtt: List[float] = []
        self._p_direct: List[float] = []
        self._p_closest: List[float] = []
        self._p_peer: List[bool] = []
        self._p_transit: List[int] = []  # upstream ASN, 0 = peer/local path

        # sampled traceroute rows (columnar; hop -1 = no reply)
        self._t_vp: List[int] = []
        self._t_ts: List[int] = []
        self._t_addr: List[int] = []
        self._t_hop: List[int] = []

        # coverage: letter -> identity -> observation count
        self.identities: Dict[str, Dict[str, int]] = {}

        # transfers
        self.transfer_total = 0
        self.transfer_clean = 0
        self.transfers: List[TransferObservation] = []

        self.rounds_processed = 0
        self.queries_simulated = 0

    # -- ingest -------------------------------------------------------------------

    def note_site(self, vp_id: int, addr_idx: int, site_key: str) -> None:
        """Per-round catchment observation; drives Figure 3."""
        site_idx = self.sites.intern(site_key)
        state = self._stability.get((vp_id, addr_idx))
        if state is None:
            self._stability[(vp_id, addr_idx)] = [site_idx, 0, 1]
            return
        if state[0] != site_idx:
            state[1] += 1
            state[0] = site_idx
        state[2] += 1

    def note_identity(self, letter: str, identity: str) -> None:
        """A CHAOS identity answer (coverage input)."""
        bucket = self.identities.setdefault(letter, {})
        bucket[identity] = bucket.get(identity, 0) + 1

    def add_probe_sample(
        self,
        vp_id: int,
        ts: int,
        addr_idx: int,
        site_key: str,
        rtt_ms: float,
        direct_km: float,
        closest_global_km: float,
        via_peer: bool,
        transit_asn: int = 0,
    ) -> None:
        self._p_vp.append(vp_id)
        self._p_ts.append(ts)
        self._p_addr.append(addr_idx)
        self._p_site.append(self.sites.intern(site_key))
        self._p_rtt.append(rtt_ms)
        self._p_direct.append(direct_km)
        self._p_closest.append(closest_global_km)
        self._p_peer.append(via_peer)
        self._p_transit.append(transit_asn)

    def add_traceroute(
        self, vp_id: int, ts: int, addr_idx: int, second_to_last_hop: Optional[str]
    ) -> None:
        self._t_vp.append(vp_id)
        self._t_ts.append(ts)
        self._t_addr.append(addr_idx)
        self._t_hop.append(
            -1 if second_to_last_hop is None else self.hops.intern(second_to_last_hop)
        )

    def count_transfer(self, clean: bool) -> None:
        self.transfer_total += 1
        if clean:
            self.transfer_clean += 1

    def add_transfer_observation(self, obs: TransferObservation) -> None:
        self.transfers.append(obs)

    # -- read-side ------------------------------------------------------------------

    def change_counts(self) -> Dict[Tuple[int, int], Tuple[int, int]]:
        """(vp_id, addr_idx) -> (changes, rounds observed)."""
        return {
            key: (state[1], state[2]) for key, state in self._stability.items()
        }

    def probe_columns(self) -> Dict[str, np.ndarray]:
        """The sampled probe table as numpy columns."""
        return {
            "vp": np.asarray(self._p_vp, dtype=np.int32),
            "ts": np.asarray(self._p_ts, dtype=np.int64),
            "addr": np.asarray(self._p_addr, dtype=np.int16),
            "site": np.asarray(self._p_site, dtype=np.int32),
            "rtt": np.asarray(self._p_rtt, dtype=np.float32),
            "direct_km": np.asarray(self._p_direct, dtype=np.float32),
            "closest_km": np.asarray(self._p_closest, dtype=np.float32),
            "peer": np.asarray(self._p_peer, dtype=bool),
            "transit": np.asarray(self._p_transit, dtype=np.int32),
        }

    def traceroute_columns(self) -> Dict[str, np.ndarray]:
        """The sampled traceroute table as numpy columns."""
        return {
            "vp": np.asarray(self._t_vp, dtype=np.int32),
            "ts": np.asarray(self._t_ts, dtype=np.int64),
            "addr": np.asarray(self._t_addr, dtype=np.int16),
            "hop": np.asarray(self._t_hop, dtype=np.int32),
        }

    def probe_samples(self) -> List[ProbeSample]:
        """Sampled probe rows as objects (small datasets / tests only)."""
        return [
            ProbeSample(
                vp_id=self._p_vp[i],
                ts=self._p_ts[i],
                address=self.addresses[self._p_addr[i]],
                site_key=self.sites[self._p_site[i]],
                rtt_ms=self._p_rtt[i],
                direct_km=self._p_direct[i],
                closest_global_km=self._p_closest[i],
                via_peer=self._p_peer[i],
            )
            for i in range(len(self._p_vp))
        ]

    def traceroute_samples(self) -> List[TracerouteSample]:
        """Sampled traceroute rows as objects (small datasets / tests)."""
        return [
            TracerouteSample(
                vp_id=self._t_vp[i],
                ts=self._t_ts[i],
                address=self.addresses[self._t_addr[i]],
                second_to_last_hop=(
                    None if self._t_hop[i] < 0 else self.hops[self._t_hop[i]]
                ),
            )
            for i in range(len(self._t_vp))
        ]

    def summary(self) -> Dict[str, int]:
        """Dataset-size fingerprint (the paper's §4.1 counts analogue)."""
        return {
            "rounds": self.rounds_processed,
            "queries": self.queries_simulated,
            "probe_samples": len(self._p_vp),
            "traceroute_samples": len(self._t_vp),
            "transfers": self.transfer_total,
            "transfer_observations": len(self.transfers),
            "stability_pairs": len(self._stability),
        }
