"""The shipped scenario packs.

Importing :mod:`repro.scenarios` registers these.  Three packs ground
the layers in the literature, plus the two baselines:

* ``default`` — the repo's default :class:`StudyConfig` knobs, as a
  registered scenario (byte-identical to a hand-built config);
* ``paper`` — the full 675-VP, 30-minute campaign (what
  ``StudyConfig.paper()`` historically special-cased);
* ``froot-sea`` — the F-ROOT Southeast-Asia build-out study: boosted
  Asia/Oceania VP density and a three-stage f.root site expansion wave,
  read through the longitudinal per-region RTT analysis.  The
  ``froot-sea-stage1`` / ``froot-sea-stage2`` overlays pin the timeline
  to its earlier stages so the waves replay as separate campaigns;
* ``broot-querymix`` — the B-Root query-composition study: a larger ISP
  client population and a popularity-skewed query mix (Zipf head,
  Chromium-style random-label probes, junk tail, one junk burst)
  synthesised through the passive flow engine.
"""

from __future__ import annotations

from repro.scenarios.registry import (
    Overlay,
    Scenario,
    register_overlay,
    register_scenario,
)


def register_packs() -> None:
    """Register the shipped packs (idempotent per process: the package
    ``__init__`` calls this exactly once, on first import)."""
    register_scenario(Scenario(
        name="default",
        version=1,
        description="The repo's default study: ~200 VPs, 6-hour base "
        "interval, all fault classes on.",
        analyses=("stability", "rtt"),
    ))

    register_scenario(Scenario(
        name="paper",
        version=1,
        description="The source paper's full campaign: 675 VPs, 30-minute "
        "intervals, 174 days (formerly StudyConfig.paper()).",
        world={"ring_scale": 1.0, "ring_min_per_region": 1},
        platform={
            "interval_scale": 1.0,
            "rtt_sample_every": 8,
            "traceroute_sample_every": 16,
            "axfr_sample_every": 32,
            "clean_transfer_keep_one_in": 20000,
        },
        analyses=("stability", "rtt"),
    ))

    register_scenario(Scenario(
        name="froot-sea",
        version=1,
        description="F-ROOT in Southeast Asia: denser Asia/Oceania VP "
        "coverage watching a staged f.root site build-out, measured as "
        "longitudinal per-region RTT.",
        world={
            "region_scale": {"ASIA": 1.6, "OCEANIA": 1.5},
            "buildout": [
                {
                    "label": "pre-expansion",
                    "start": "2023-01-01",
                    "site_scale": {"f/ASIA": 0.4, "f/OCEANIA": 0.4},
                },
                {
                    "label": "sea-wave-1",
                    "start": "2023-06-01",
                    "site_scale": {"f/ASIA": 0.7, "f/OCEANIA": 0.7},
                },
                {
                    "label": "sea-wave-2",
                    "start": "2023-11-01",
                    "site_scale": {"f/ASIA": 1.0, "f/OCEANIA": 1.0},
                },
            ],
        },
        analyses=("regional_rtt", "rtt"),
    ))

    register_scenario(Scenario(
        name="broot-querymix",
        version=1,
        description="B-Root query composition: a larger ISP population "
        "feeding a popularity-skewed query mix (Zipf head, chromioid "
        "probes, junk tail, one junk burst) through the passive flow "
        "engine.",
        traffic={
            "profiles": {"isp": {"n_clients": 4000}},
            "querymix": {
                "zipf_alpha": 1.1,
                "n_qnames": 4000,
                "junk_fraction": 0.18,
                "chromioid_fraction": 0.45,
                # Inside the ISP capture window (recipes.ISP_WINDOW),
                # so the aggregate actually shows the amplification.
                "bursts": [
                    {
                        "start": "2024-02-12",
                        "end": "2024-02-15",
                        "multiplier": 3.0,
                        "category": "junk",
                    },
                ],
            },
        },
        analyses=("querymix", "trafficshift"),
    ))

    register_overlay(Overlay(
        name="froot-sea-stage1",
        description="Pin the froot-sea build-out to its first stage "
        "(pre-expansion site counts).",
        world={"buildout_stage": 1},
    ))
    register_overlay(Overlay(
        name="froot-sea-stage2",
        description="Pin the froot-sea build-out after the first "
        "Southeast-Asia wave.",
        world={"buildout_stage": 2},
    ))
    register_overlay(Overlay(
        name="no-faults",
        description="Disable all fault injection (clean-world control).",
        faults={"include_faults": False},
    ))
