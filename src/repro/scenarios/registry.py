"""Named, versioned scenario registry.

A :class:`Scenario` is a stack of layer documents — plain JSON-ready
dicts written in the vocabulary of the typed specs
(:mod:`repro.scenarios.specs`): a ``world`` doc, a ``platform`` doc, a
``traffic`` doc and a ``faults`` doc.  An :class:`Overlay` is a partial
stack that :func:`compose` folds onto a registered scenario with the
deterministic deep-merge (:mod:`repro.scenarios.merge`), in the order
given on the command line.

Identity: every composed scenario has a content :meth:`fingerprint` —
a truncated SHA-256 over the canonical JSON of its *normalised* layers
(specs round-tripped through ``to_dict`` so equivalent spellings hash
identically).  The fingerprint deliberately excludes the seed and the
execution knobs (shards / workers / engine): the same scenario run
sharded or serial, on either engine, produces byte-identical data, so
those must not change what the data claims to be.  The identity dict
(``{"name", "version", "fingerprint", "overlays"}``) is stamped into
the :class:`~repro.core.config.StudyConfig` a scenario builds and flows
from there into ``MANIFEST.json`` and ``CHECKPOINT.json``.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import StudyConfig
from repro.scenarios.merge import deep_merge
from repro.scenarios.specs import (
    FaultSpec,
    PlatformSpec,
    TrafficSpec,
    WorldSpec,
    reject_unknown_keys,
)

#: Layer doc names, in canonical order.
LAYERS: Tuple[str, ...] = ("world", "platform", "traffic", "faults")

#: The world-doc keys that live as flat ``StudyConfig`` fields; the
#: rest travel in the config's ``world`` extras mapping.
_WORLD_FLAT = ("ring_scale", "ring_min_per_region")

#: Execution knobs callers may override per run without changing what
#: scenario the data belongs to (excluded from the fingerprint).
EXECUTION_KNOBS = ("shards", "workers", "engine")


def _spec_for(layer: str, doc: Mapping[str, Any]):
    cls = {
        "world": WorldSpec,
        "platform": PlatformSpec,
        "traffic": TrafficSpec,
        "faults": FaultSpec,
    }[layer]
    return cls.from_dict(doc)


@dataclass(frozen=True)
class Overlay:
    """A partial layer stack folded onto a scenario at compose time."""

    name: str
    description: str = ""
    world: Mapping[str, Any] = field(default_factory=dict)
    platform: Mapping[str, Any] = field(default_factory=dict)
    traffic: Mapping[str, Any] = field(default_factory=dict)
    faults: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("overlay needs a name")
        # Key-level strictness only: a partial doc need not stand alone
        # as a valid spec (e.g. an overlay pinning buildout_stage), so
        # full validation waits until compose() merges the stack.
        spec_classes = {
            "world": WorldSpec,
            "platform": PlatformSpec,
            "traffic": TrafficSpec,
            "faults": FaultSpec,
        }
        for layer in LAYERS:
            reject_unknown_keys(
                f"overlay {self.name!r} ({layer} layer)",
                getattr(self, layer),
                [f.name for f in fields(spec_classes[layer])],
            )


@dataclass(frozen=True)
class Scenario:
    """A named, versioned stack of layer documents."""

    name: str
    version: int = 1
    description: str = ""
    world: Mapping[str, Any] = field(default_factory=dict)
    platform: Mapping[str, Any] = field(default_factory=dict)
    traffic: Mapping[str, Any] = field(default_factory=dict)
    faults: Mapping[str, Any] = field(default_factory=dict)
    #: Overlay names this scenario was composed with (in order).
    overlays: Tuple[str, ...] = ()
    #: Registered analyses that headline this scenario — what the CI
    #: smoke run (and ``rootsim-report --scenario``) exercises.
    analyses: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("scenario needs a name")
        if self.version < 1:
            raise ValueError(
                f"scenario {self.name!r}: version must be >= 1: {self.version}"
            )
        object.__setattr__(self, "overlays", tuple(self.overlays))
        object.__setattr__(self, "analyses", tuple(self.analyses))
        # Constructing the typed specs validates every layer doc (strict
        # keys, ranges, cross-field invariants) with layer-named errors.
        for layer in LAYERS:
            _spec_for(layer, getattr(self, layer))

    # -- identity ----------------------------------------------------------------------

    def normalized_layers(self) -> Dict[str, Dict[str, Any]]:
        """Every layer doc round-tripped through its typed spec, so
        equivalent spellings normalise to identical dicts."""
        return {
            layer: _spec_for(layer, getattr(self, layer)).to_dict()
            for layer in LAYERS
        }

    def fingerprint(self) -> str:
        """Content hash of the composed scenario (seed- and
        execution-independent)."""
        layers = self.normalized_layers()
        for knob in EXECUTION_KNOBS:
            layers["platform"].pop(knob, None)
        doc = {"name": self.name, "version": self.version, "layers": layers}
        canonical = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def identity(self) -> Dict[str, Any]:
        """The provenance stamp carried into manifests/checkpoints."""
        return {
            "name": self.name,
            "version": self.version,
            "overlays": list(self.overlays),
            "fingerprint": self.fingerprint(),
        }

    # -- composition -------------------------------------------------------------------

    def with_overlay(self, overlay: Overlay) -> "Scenario":
        """This scenario with *overlay*'s partial docs folded on."""
        return Scenario(
            name=self.name,
            version=self.version,
            description=self.description,
            world=deep_merge(self.world, overlay.world),
            platform=deep_merge(self.platform, overlay.platform),
            traffic=deep_merge(self.traffic, overlay.traffic),
            faults=deep_merge(self.faults, overlay.faults),
            overlays=self.overlays + (overlay.name,),
            analyses=self.analyses,
        )

    def study_config(self, seed: int = 2024, **execution: Any) -> StudyConfig:
        """Materialise the composed layers into a flat
        :class:`StudyConfig`, stamped with this scenario's identity.

        ``execution`` may override the per-run knobs (``shards``,
        ``workers``, ``engine``) without touching the fingerprint.
        """
        reject_unknown_keys(
            f"scenario {self.name!r} execution overrides",
            execution,
            list(EXECUTION_KNOBS),
        )
        platform_doc = dict(self.platform)
        platform_doc.update(execution)
        world_spec = WorldSpec.from_dict(self.world)
        platform_spec = PlatformSpec.from_dict(platform_doc)
        fault_spec = FaultSpec.from_dict(self.faults)
        world_norm = world_spec.to_dict()
        traffic_norm = TrafficSpec.from_dict(self.traffic).to_dict()
        # Only keys a layer doc actually sets travel in the extras
        # mappings — the default scenario keeps them None, so its
        # StudyConfig equals a hand-built StudyConfig() exactly.
        world_extra = {
            key: world_norm[key] for key in self.world if key not in _WORLD_FLAT
        }
        traffic_extra = {key: traffic_norm[key] for key in self.traffic}
        fault_extra = {
            key: getattr(fault_spec, key)
            for key in self.faults
            if key != "include_faults"
        }
        return StudyConfig(
            seed=seed,
            ring_scale=world_spec.ring_scale,
            ring_min_per_region=world_spec.ring_min_per_region,
            interval_scale=platform_spec.interval_scale,
            campaign_start=platform_spec.campaign_start,
            campaign_end=platform_spec.campaign_end,
            rtt_sample_every=platform_spec.rtt_sample_every,
            traceroute_sample_every=platform_spec.traceroute_sample_every,
            axfr_sample_every=platform_spec.axfr_sample_every,
            clean_transfer_keep_one_in=platform_spec.clean_transfer_keep_one_in,
            include_faults=fault_spec.include_faults,
            shards=platform_spec.shards,
            workers=platform_spec.workers,
            engine=platform_spec.engine,
            world=world_extra or None,
            traffic=traffic_extra or None,
            faults=fault_extra or None,
            scenario=self.identity(),
        )

    # -- serialization -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "version": self.version,
            "description": self.description,
            "world": dict(self.world),
            "platform": dict(self.platform),
            "traffic": dict(self.traffic),
            "faults": dict(self.faults),
            "overlays": list(self.overlays),
            "analyses": list(self.analyses),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        reject_unknown_keys("scenario", data, [f.name for f in fields(cls)])
        return cls(**dict(data))


# --- the registry --------------------------------------------------------------------

_SCENARIOS: Dict[str, Scenario] = {}
_OVERLAYS: Dict[str, Overlay] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry (its name must be free)."""
    if scenario.name in _SCENARIOS:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _SCENARIOS[scenario.name] = scenario
    return scenario


def register_overlay(overlay: Overlay) -> Overlay:
    """Add *overlay* to the registry (its name must be free)."""
    if overlay.name in _OVERLAYS:
        raise ValueError(f"overlay {overlay.name!r} is already registered")
    _OVERLAYS[overlay.name] = overlay
    return overlay


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_SCENARIOS)


def overlay_names() -> List[str]:
    """All registered overlay names, sorted."""
    return sorted(_OVERLAYS)


def get_scenario(name: str) -> Scenario:
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r} "
            f"(registered: {', '.join(scenario_names()) or 'none'})"
        ) from None


def get_overlay(name: str) -> Overlay:
    try:
        return _OVERLAYS[name]
    except KeyError:
        raise KeyError(
            f"unknown overlay {name!r} "
            f"(registered: {', '.join(overlay_names()) or 'none'})"
        ) from None


def compose(name: str, overlays: Sequence[str] = ()) -> Scenario:
    """The registered scenario *name* with *overlays* folded on, in
    order.  The result is fully validated — a stack whose merge would
    change a key's category, or whose merged docs violate a spec
    invariant, raises here rather than mid-campaign."""
    scenario = get_scenario(name)
    for overlay_name in overlays:
        scenario = scenario.with_overlay(get_overlay(overlay_name))
    return scenario
