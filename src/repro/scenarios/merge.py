"""Deterministic deep-merge for scenario layers.

A scenario is a stack of layer documents (plain dicts of JSON
primitives): the base layers of the registered scenario plus any number
of ordered overlays.  :func:`deep_merge` folds one overlay onto a base;
:func:`merge_layers` folds a whole stack left to right.

The semantics are deliberately tiny so they can be *associative*:

* mapping ⊕ mapping — merge key-wise, recursing per key;
* leaf ⊕ leaf — the overlay value replaces the base value (lists are
  leaves: overlays replace them wholesale, they never concatenate);
* mapping ⊕ leaf (either direction) — a :class:`MergeError`.

Rejecting category changes is what makes the fold associative: with
"scalar wipes subtree" semantics the wipe is forgotten as soon as a
later mapping lands on the same key, so ``(a ⊕ b) ⊕ c`` and
``a ⊕ (b ⊕ c)`` diverge.  Category-stable layers form a semigroup —
the hypothesis property test in ``tests/scenarios`` drives triples
through both associations and asserts identical output, key order
included (merged mappings are emitted with sorted keys).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping


class MergeError(ValueError):
    """An overlay changed the category (mapping vs leaf) of a key."""


def _copy_sorted(doc: Any) -> Any:
    """A subtree untouched by the merge, re-emitted with sorted keys so
    the "sorted at every level" contract holds for one-sided keys too."""
    if not isinstance(doc, Mapping):
        return doc
    return {key: _copy_sorted(doc[key]) for key in sorted(doc)}


def _merge(base: Any, overlay: Any, path: str) -> Any:
    base_is_map = isinstance(base, Mapping)
    overlay_is_map = isinstance(overlay, Mapping)
    if base_is_map != overlay_is_map:
        raise MergeError(
            f"overlay changes the category of {path or '<root>'!r}: "
            f"{type(base).__name__} vs {type(overlay).__name__} "
            f"(scenario layers must be category-stable)"
        )
    if not base_is_map:
        return overlay
    merged: Dict[str, Any] = {}
    for key in sorted(set(base) | set(overlay)):
        child = f"{path}.{key}" if path else key
        if key not in overlay:
            merged[key] = _copy_sorted(base[key])
        elif key not in base:
            merged[key] = _copy_sorted(overlay[key])
        else:
            merged[key] = _merge(base[key], overlay[key], child)
    return merged


def deep_merge(base: Mapping[str, Any], overlay: Mapping[str, Any]) -> Dict[str, Any]:
    """Fold *overlay* onto *base*; neither input is mutated.

    The result's mappings carry sorted keys at every level, so equal
    layer stacks produce not just equal but identically-ordered dicts
    (the scenario fingerprint hashes the canonical JSON of this).
    """
    if not isinstance(base, Mapping) or not isinstance(overlay, Mapping):
        raise MergeError("scenario layers must be mappings at the top level")
    return _merge(base, overlay, "")


def merge_layers(*layers: Mapping[str, Any]) -> Dict[str, Any]:
    """Fold a whole layer stack, left to right (base first)."""
    merged: Dict[str, Any] = {}
    for layer in layers:
        merged = deep_merge(merged, layer)
    return merged
