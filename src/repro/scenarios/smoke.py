"""Tiny-scale smoke runs over every registered scenario.

CI's scenario-smoke job (and the pack tests) drive each registered
scenario through the full path — compose → campaign → saved dataset →
reload → headline analyses → figure text — at a scale that finishes in
seconds: ring capped at 0.1, a ~5-day campaign window, dense sampling.
The scaled-down config keeps the scenario's own layers (build-out,
traffic, fault toggles); only the execution cost shrinks.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.config import StudyConfig
from repro.scenarios.registry import Scenario, compose, scenario_names
from repro.util.timeutil import parse_ts

#: The smoke campaign window (~5 days around the b.root change).
SMOKE_WINDOW = ("2023-11-25", "2023-11-30")

SMOKE_SEED = 77


def smoke_config(scenario: Scenario, seed: int = SMOKE_SEED) -> StudyConfig:
    """The scenario's config, shrunk to smoke scale.

    The world/traffic/fault layers are untouched; ring scale is capped,
    the window is cut to ~5 days and sampling densified so the few
    remaining rounds still populate every table.
    """
    config = scenario.study_config(seed=seed)
    return replace(
        config,
        ring_scale=min(config.ring_scale, 0.1),
        interval_scale=max(config.interval_scale, 96.0),
        campaign_start=parse_ts(SMOKE_WINDOW[0]),
        campaign_end=parse_ts(SMOKE_WINDOW[1]),
        rtt_sample_every=1,
        traceroute_sample_every=2,
        axfr_sample_every=2,
        clean_transfer_keep_one_in=20,
    )


def run_scenario_smoke(
    name: str,
    out_dir: str,
    seed: int = SMOKE_SEED,
    overlays: Sequence[str] = (),
) -> Dict[str, Path]:
    """Run scenario *name* end to end at smoke scale.

    Saves the dataset under ``out_dir/<name>/dataset``, reloads it, runs
    the scenario's headline analyses against the reloaded copy and
    writes each rendered figure/table to ``out_dir/<name>/<analysis>.txt``.
    Returns the written artefact paths (dataset directory included).
    """
    from repro.analysis import registry
    from repro.analysis.summaries import PASSIVE_ANALYSES, render_summary
    from repro.core.study import RootStudy
    from repro.data import load_dataset

    scenario = compose(name, overlays)
    config = smoke_config(scenario, seed=seed)
    study = RootStudy(config)
    results = study.run()

    base = Path(out_dir) / name
    base.mkdir(parents=True, exist_ok=True)
    dataset_dir = results.save(str(base / "dataset"))

    dataset = load_dataset(dataset_dir)
    stamp = (dataset.study or {}).get("scenario") or {}
    if stamp.get("fingerprint") != scenario.fingerprint():
        raise RuntimeError(
            f"scenario {name!r}: saved manifest carries fingerprint "
            f"{stamp.get('fingerprint')!r}, expected {scenario.fingerprint()!r}"
        )

    written: Dict[str, Path] = {"dataset": dataset_dir}
    for analysis_name in scenario.analyses:
        inputs = {}
        if analysis_name in PASSIVE_ANALYSES:
            inputs["aggregate"] = dataset.passive.aggregate("isp")
        analysis = registry.run(analysis_name, dataset, **inputs)
        target = base / f"{analysis_name}.txt"
        target.write_text(render_summary(analysis_name, analysis) + "\n")
        written[analysis_name] = target
    return written


def main(argv: Optional[List[str]] = None) -> int:
    """Enumerate every registered scenario at smoke scale (CI job)."""
    parser = argparse.ArgumentParser(
        prog="rootsim-scenario-smoke",
        description="run every registered scenario end to end at tiny "
                    "scale, writing figure data per scenario",
    )
    parser.add_argument("--out", required=True, help="artefact directory")
    parser.add_argument("--seed", type=int, default=SMOKE_SEED)
    parser.add_argument(
        "--scenario", metavar="NAME", action="append", default=None,
        help="limit to specific scenario(s); default: all registered",
    )
    args = parser.parse_args(argv)

    names = args.scenario or scenario_names()
    for name in names:
        print(f"scenario {name}: running smoke campaign ...")
        written = run_scenario_smoke(name, args.out, seed=args.seed)
        artefacts = ", ".join(sorted(k for k in written if k != "dataset"))
        print(f"scenario {name}: ok ({artefacts or 'dataset only'})")
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution helper
    sys.exit(main())
