"""Typed, serializable scenario spec layers.

The monolithic :class:`~repro.core.config.StudyConfig` decomposes into
four layers, each a frozen dataclass with strict ``to_dict`` /
``from_dict`` round-tripping:

* :class:`WorldSpec` — what world exists: VP ring scale and regional
  mix, per-letter site scaling, and staged site build-out timelines;
* :class:`PlatformSpec` — how the platform measures it: campaign
  window, probing cadences, and the execution knobs (shards, workers,
  engine);
* :class:`TrafficSpec` — what the passive layer observes: population
  profile overrides per capture point plus an optional query-mix
  composition (:class:`~repro.passive.querymix.QueryMixSpec`);
* :class:`FaultSpec` — which fault classes the campaign injects.

``StudyConfig`` remains the flat facade the pipeline passes across
process-pool pipes and into checkpoints; these specs are its typed
views (``config.world_spec()`` etc.) and the vocabulary scenario layer
documents are written in (:mod:`repro.scenarios.registry`).

Mapping-valued fields are stored internally as sorted tuples of pairs
so every spec stays hashable and equality is order-independent;
``to_dict`` thaws them back into plain JSON-ready dicts.

All ``from_dict`` paths are strict: unknown keys raise a
``ValueError`` with a "did you mean" suggestion instead of being
silently dropped, and every validation message names the offending
layer.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.geo.continents import Continent
from repro.passive.clients import (
    ISP_PROFILE,
    IXP_EU_PROFILE,
    IXP_NA_PROFILE,
    PopulationProfile,
)
from repro.passive.querymix import QueryMixSpec
from repro.rss.sites import SITE_PLAN
from repro.util.timeutil import Timestamp, parse_ts
from repro.vantage.ring import RingConfig
from repro.vantage.scheduler import CAMPAIGN_END, CAMPAIGN_START


def reject_unknown_keys(
    layer: str, data: Mapping[str, Any], known: Sequence[str]
) -> None:
    """Strict-loading guard: fail on the first unknown key, with a
    "did you mean" hint against the layer's known keys."""
    for key in data:
        if key in known:
            continue
        close = difflib.get_close_matches(str(key), list(known), n=1)
        hint = f"; did you mean {close[0]!r}?" if close else ""
        raise ValueError(
            f"{layer}: unknown key {key!r}{hint} "
            f"(known keys: {', '.join(sorted(known))})"
        )


def _freeze_scales(layer: str, field_name: str, value: Any) -> Tuple[Tuple[str, float], ...]:
    """Normalise a {key: multiplier} mapping into sorted pairs."""
    if isinstance(value, Mapping):
        items = list(value.items())
    else:
        items = [tuple(pair) for pair in value]
    out: List[Tuple[str, float]] = []
    for key, scale in items:
        scale = float(scale)
        if scale < 0:
            raise ValueError(
                f"{layer}: {field_name}[{key!r}] must be >= 0, got {scale}"
            )
        out.append((str(key), scale))
    return tuple(sorted(out))


def _scales_dict(value: Tuple[Tuple[str, float], ...]) -> Dict[str, float]:
    return {key: scale for key, scale in value}


# --- world ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BuildoutStage:
    """One stage of a site build-out timeline.

    ``site_scale`` keys are ``"letter"`` or ``"letter/CONTINENT"``
    (continent by enum name, e.g. ``"f/ASIA"``); values multiply the
    letter's Table-4 (global, local) site counts from this stage on.
    Stages apply cumulatively — a later stage's keys override earlier
    stages' entries for the same key.
    """

    label: str
    start: str  # YYYY-MM-DD, documentation of when the wave lands
    site_scale: Tuple[Tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("world spec: buildout stage needs a label")
        parse_ts(self.start)  # raises on malformed dates
        object.__setattr__(
            self,
            "site_scale",
            _freeze_scales("world spec", f"buildout[{self.label}].site_scale", self.site_scale),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "start": self.start,
            "site_scale": _scales_dict(self.site_scale),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BuildoutStage":
        reject_unknown_keys(
            "world spec (buildout stage)", data, [f.name for f in fields(cls)]
        )
        return cls(**data)


@dataclass(frozen=True)
class WorldSpec:
    """The world layer: VP ring shape and the site deployment plan."""

    ring_scale: float = 0.3
    ring_min_per_region: int = 4
    #: Per-continent VP multipliers (by enum name, e.g. ``"ASIA"``),
    #: applied on top of ``ring_scale``.
    region_scale: Tuple[Tuple[str, float], ...] = ()
    #: Per-letter (or per ``"letter/CONTINENT"``) site-count multipliers
    #: over the paper's Table 4 plan.
    site_scale: Tuple[Tuple[str, float], ...] = ()
    #: Ordered build-out stages; their ``site_scale`` entries stack
    #: cumulatively on top of :attr:`site_scale`.
    buildout: Tuple[BuildoutStage, ...] = ()
    #: How many build-out stages apply (-1 = all) — pinning earlier
    #: values replays the timeline as a sequence of campaigns.
    buildout_stage: int = -1

    def __post_init__(self) -> None:
        if self.ring_scale <= 0:
            raise ValueError(
                f"world spec: ring_scale must be positive: {self.ring_scale}"
            )
        if self.ring_min_per_region < 0:
            raise ValueError(
                f"world spec: ring_min_per_region must be >= 0: "
                f"{self.ring_min_per_region}"
            )
        object.__setattr__(
            self, "region_scale",
            _freeze_scales("world spec", "region_scale", self.region_scale),
        )
        continents = {c.name for c in Continent}
        for key, _scale in self.region_scale:
            if key not in continents:
                raise ValueError(
                    f"world spec: region_scale key {key!r} is not a "
                    f"continent name ({', '.join(sorted(continents))})"
                )
        object.__setattr__(
            self, "site_scale",
            _freeze_scales("world spec", "site_scale", self.site_scale),
        )
        stages = tuple(
            stage if isinstance(stage, BuildoutStage)
            else BuildoutStage.from_dict(stage)
            for stage in self.buildout
        )
        object.__setattr__(self, "buildout", stages)
        if not -1 <= self.buildout_stage <= len(stages):
            raise ValueError(
                f"world spec: buildout_stage must be -1 or 0..{len(stages)}: "
                f"{self.buildout_stage}"
            )
        for key, _scale in self._site_scales().items():
            self._split_scale_key(key)
        plan = self.site_plan()
        if plan is not None:
            for letter, per_continent in plan.items():
                if sum(g + l for g, l in per_continent.values()) < 1:
                    raise ValueError(
                        f"world spec: site scaling leaves {letter}.root "
                        f"with no sites"
                    )

    @staticmethod
    def _split_scale_key(key: str) -> Tuple[str, Optional[Continent]]:
        letter, _, continent = key.partition("/")
        if letter not in SITE_PLAN:
            raise ValueError(
                f"world spec: site_scale key {key!r} names unknown letter "
                f"{letter!r}"
            )
        if not continent:
            return letter, None
        try:
            return letter, Continent[continent]
        except KeyError:
            raise ValueError(
                f"world spec: site_scale key {key!r} names unknown "
                f"continent {continent!r}"
            ) from None

    def stages_applied(self) -> Tuple[BuildoutStage, ...]:
        """The build-out stages in effect under ``buildout_stage``."""
        if self.buildout_stage == -1:
            return self.buildout
        return self.buildout[: self.buildout_stage]

    def _site_scales(self) -> Dict[str, float]:
        """The effective site multipliers: base scales plus the applied
        stages, later stages overriding per key."""
        scales = _scales_dict(self.site_scale)
        for stage in self.stages_applied():
            scales.update(_scales_dict(stage.site_scale))
        return scales

    def site_plan(self) -> Optional[Dict[str, Dict[Continent, Tuple[int, int]]]]:
        """The scaled Table-4 site plan, or ``None`` when this spec
        keeps the default catalog (the byte-identity fast path)."""
        scales = self._site_scales()
        if not scales:
            return None
        per_key: Dict[Tuple[str, Optional[Continent]], float] = {
            self._split_scale_key(key): scale for key, scale in scales.items()
        }
        plan: Dict[str, Dict[Continent, Tuple[int, int]]] = {}
        for letter, per_continent in SITE_PLAN.items():
            scaled: Dict[Continent, Tuple[int, int]] = {}
            for continent, (n_global, n_local) in per_continent.items():
                scale = per_key.get(
                    (letter, continent), per_key.get((letter, None), 1.0)
                )
                scaled[continent] = (
                    int(round(n_global * scale)), int(round(n_local * scale))
                )
            plan[letter] = scaled
        return plan

    def cache_token(self) -> Tuple[Any, ...]:
        """The hashable part of this spec a built world depends on."""
        return (self.site_scale, self.buildout, self.buildout_stage)

    def ring_config(self, first_asn: int = 50000) -> RingConfig:
        return RingConfig(
            scale=self.ring_scale,
            first_asn=first_asn,
            min_per_region=self.ring_min_per_region,
            region_scale=self.region_scale,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ring_scale": self.ring_scale,
            "ring_min_per_region": self.ring_min_per_region,
            "region_scale": _scales_dict(self.region_scale),
            "site_scale": _scales_dict(self.site_scale),
            "buildout": [stage.to_dict() for stage in self.buildout],
            "buildout_stage": self.buildout_stage,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorldSpec":
        reject_unknown_keys("world spec", data, [f.name for f in fields(cls)])
        return cls(**data)


# --- platform ------------------------------------------------------------------------


@dataclass(frozen=True)
class PlatformSpec:
    """The measurement-platform layer: window, cadences, execution."""

    interval_scale: float = 12.0
    campaign_start: Timestamp = CAMPAIGN_START
    campaign_end: Timestamp = CAMPAIGN_END
    rtt_sample_every: int = 2
    traceroute_sample_every: int = 4
    axfr_sample_every: int = 8
    clean_transfer_keep_one_in: int = 2000
    shards: int = 1
    workers: int = 1
    engine: str = "epoch"

    def __post_init__(self) -> None:
        for attr in ("campaign_start", "campaign_end"):
            value = getattr(self, attr)
            if isinstance(value, str):
                object.__setattr__(self, attr, parse_ts(value))
        if self.interval_scale <= 0:
            raise ValueError(
                f"platform spec: interval_scale must be positive: "
                f"{self.interval_scale}"
            )
        if self.campaign_end <= self.campaign_start:
            raise ValueError(
                "platform spec: campaign_end must be after campaign_start"
            )
        for attr in (
            "rtt_sample_every",
            "traceroute_sample_every",
            "axfr_sample_every",
            "clean_transfer_keep_one_in",
            "shards",
            "workers",
        ):
            if getattr(self, attr) < 1:
                raise ValueError(
                    f"platform spec: {attr} must be >= 1: {getattr(self, attr)}"
                )
        if self.engine not in ("epoch", "scalar"):
            raise ValueError(
                f"platform spec: engine must be 'epoch' or 'scalar': "
                f"{self.engine!r}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PlatformSpec":
        reject_unknown_keys("platform spec", data, [f.name for f in fields(cls)])
        return cls(**data)


# --- traffic -------------------------------------------------------------------------

#: The capture-point profiles a traffic layer may override.
BASE_PROFILES: Dict[str, PopulationProfile] = {
    "isp": ISP_PROFILE,
    "ixp-eu": IXP_EU_PROFILE,
    "ixp-na": IXP_NA_PROFILE,
}


def _freeze_profiles(value: Any) -> Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]:
    if isinstance(value, Mapping):
        items = list(value.items())
    else:
        items = [(name, overrides) for name, overrides in value]
    out = []
    for name, overrides in items:
        if isinstance(overrides, Mapping):
            pairs = tuple(sorted(overrides.items()))
        else:
            pairs = tuple(sorted(tuple(pair) for pair in overrides))
        out.append((str(name), pairs))
    return tuple(sorted(out))


@dataclass(frozen=True)
class TrafficSpec:
    """The passive-traffic layer: population overrides and query mix."""

    #: Per-capture-point :class:`PopulationProfile` field overrides,
    #: e.g. ``{"isp": {"n_clients": 2000, "ipv6_share": 0.7}}``.
    profiles: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...] = ()
    #: Query-name composition synthesised through the passive flow
    #: engine (``None`` = no query-mix synthesis configured).
    querymix: Optional[QueryMixSpec] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "profiles", _freeze_profiles(self.profiles))
        profile_fields = [
            f.name for f in fields(PopulationProfile) if f.name != "name"
        ]
        for name, overrides in self.profiles:
            if name not in BASE_PROFILES:
                raise ValueError(
                    f"traffic spec: unknown capture profile {name!r} "
                    f"(known: {', '.join(sorted(BASE_PROFILES))})"
                )
            reject_unknown_keys(
                f"traffic spec (profile {name!r})",
                dict(overrides),
                profile_fields,
            )
        if self.querymix is not None and not isinstance(self.querymix, QueryMixSpec):
            object.__setattr__(
                self, "querymix", QueryMixSpec.from_dict(self.querymix)
            )
        # Applying the overrides validates them through the profile's
        # own __post_init__ range checks.
        self.capture_profiles()

    def profile(self, name: str) -> PopulationProfile:
        """The effective profile for capture point *name*."""
        base = BASE_PROFILES[name]
        for profile_name, overrides in self.profiles:
            if profile_name == name and overrides:
                return replace(base, **dict(overrides))
        return base

    def capture_profiles(self) -> Dict[str, PopulationProfile]:
        """Every capture point's effective profile, by name."""
        return {name: self.profile(name) for name in BASE_PROFILES}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "profiles": {
                name: dict(overrides) for name, overrides in self.profiles
            },
            "querymix": None if self.querymix is None else self.querymix.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        reject_unknown_keys("traffic spec", data, [f.name for f in fields(cls)])
        return cls(**data)


# --- faults --------------------------------------------------------------------------


@dataclass(frozen=True)
class FaultSpec:
    """The fault layer: which Table-2 fault classes run."""

    include_faults: bool = True
    bitflips: bool = True
    stale_sites: bool = True
    clock_skew: bool = True

    def __post_init__(self) -> None:
        for f in fields(self):
            if not isinstance(getattr(self, f.name), bool):
                raise ValueError(
                    f"fault spec: {f.name} must be a boolean, got "
                    f"{getattr(self, f.name)!r}"
                )

    def apply(self, plan: FaultPlan) -> FaultPlan:
        """Filter a default fault plan down to the enabled classes."""
        if not self.include_faults:
            return FaultPlan()
        from repro.faults.clock import ClockSkewPlan

        return FaultPlan(
            bitflips=plan.bitflips if self.bitflips else (),
            stale_sites=plan.stale_sites if self.stale_sites else (),
            clocks=plan.clocks if self.clock_skew else ClockSkewPlan(),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        reject_unknown_keys("fault spec", data, [f.name for f in fields(cls)])
        return cls(**data)
