"""Layered scenario system.

A scenario stacks four typed layer documents — world, platform,
traffic, faults (:mod:`repro.scenarios.specs`) — merged with the
deterministic deep-merge (:mod:`repro.scenarios.merge`) and registered
under a name + version (:mod:`repro.scenarios.registry`).  Importing
this package registers the shipped packs
(:mod:`repro.scenarios.packs`): ``default``, ``paper``, ``froot-sea``,
``broot-querymix``.

Typical use::

    from repro.scenarios import compose

    config = compose("froot-sea", overlays=["froot-sea-stage1"]).study_config(seed=7)
"""

from repro.scenarios.merge import MergeError, deep_merge, merge_layers
from repro.scenarios.packs import register_packs
from repro.scenarios.registry import (
    EXECUTION_KNOBS,
    LAYERS,
    Overlay,
    Scenario,
    compose,
    get_overlay,
    get_scenario,
    overlay_names,
    register_overlay,
    register_scenario,
    scenario_names,
)
from repro.scenarios.specs import (
    BuildoutStage,
    FaultSpec,
    PlatformSpec,
    TrafficSpec,
    WorldSpec,
    reject_unknown_keys,
)

register_packs()

__all__ = [
    "EXECUTION_KNOBS",
    "LAYERS",
    "MergeError",
    "deep_merge",
    "merge_layers",
    "Overlay",
    "Scenario",
    "compose",
    "get_overlay",
    "get_scenario",
    "overlay_names",
    "register_overlay",
    "register_scenario",
    "scenario_names",
    "BuildoutStage",
    "FaultSpec",
    "PlatformSpec",
    "TrafficSpec",
    "WorldSpec",
    "reject_unknown_keys",
]
