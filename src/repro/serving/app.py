"""HTTP backends and the ``rootsim-serve`` entry point.

The default backend is the standard library's ``ThreadingHTTPServer`` —
zero dependencies, one thread per connection, good for thousands of
requests per second against the warm cache.  When the ``[serving]``
extra is installed, :func:`make_fastapi_app` wraps the *same*
:class:`~repro.serving.service.AnalysisService` in a FastAPI/uvicorn app
for deployments that want an ASGI stack; both backends delegate every
request to ``service.handle`` so their responses are byte-identical.
"""

from __future__ import annotations

import argparse
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import List, Optional
from urllib.parse import parse_qs, urlsplit

from repro.serving.cache import ResultCache
from repro.serving.catalog import Catalog
from repro.serving.service import AnalysisService

__all__ = ["make_fastapi_app", "run_server", "serve_main"]


def _make_handler(service: AnalysisService):
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"  # keep-alive: the bench reuses connections
        # without TCP_NODELAY, Nagle + delayed ACK stalls every keep-alive
        # response ~40ms — two orders of magnitude over the warm-cache cost
        disable_nagle_algorithm = True
        server_version = "rootsim-serve"

        def _dispatch(self, method: str) -> None:
            parsed = urlsplit(self.path)
            query = {
                key: values[-1]
                for key, values in parse_qs(parsed.query).items()
            }
            headers = {key.lower(): value for key, value in self.headers.items()}
            try:
                response = service.handle(method, parsed.path, query, headers)
            except Exception as exc:  # never kill the connection thread
                from repro.analysis.summaries import canonical_json_bytes

                body = canonical_json_bytes(
                    {"error": f"{type(exc).__name__}: {exc}"}
                )
                self.send_response(500)
                self.send_header("Content-Type", "application/json; charset=utf-8")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            self.send_response(response.status)
            for key, value in response.headers.items():
                self.send_header(key, value)
            # HTTP/1.1 keep-alive needs an explicit length, 304s included
            self.send_header("Content-Length", str(len(response.body)))
            self.end_headers()
            if response.body:
                self.wfile.write(response.body)

        def do_GET(self) -> None:
            self._dispatch("GET")

        def do_POST(self) -> None:
            self._dispatch("POST")

        def log_message(self, format: str, *args) -> None:
            pass  # per-request stderr chatter would drown the bench

    return Handler


def run_server(
    service: AnalysisService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the stdlib backend; ``port=0`` picks an ephemeral port.

    Returns the bound server — the caller owns ``serve_forever()`` /
    ``shutdown()``, which lets tests and the bench run it on a thread.
    """
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    server.daemon_threads = True
    return server


def make_fastapi_app(service: AnalysisService):
    """The same service as a FastAPI app (requires the ``[serving]``
    extra; raises a clear error when FastAPI is not installed)."""
    try:
        from fastapi import FastAPI, Request
        from fastapi.responses import Response as FastAPIResponse
    except ImportError as exc:
        raise RuntimeError(
            "FastAPI backend requested but fastapi is not installed; "
            "install the [serving] extra (pip install '.[serving]') or "
            "use the dependency-free stdlib backend"
        ) from exc

    app = FastAPI(title="rootsim-serve", docs_url=None, redoc_url=None)

    @app.api_route("/{rest:path}", methods=["GET", "POST"])
    async def dispatch(rest: str, request: Request):  # pragma: no cover - needs extra
        response = service.handle(
            request.method,
            "/" + rest,
            dict(request.query_params),
            {key.lower(): value for key, value in request.headers.items()},
        )
        return FastAPIResponse(
            content=response.body,
            status_code=response.status,
            headers=response.headers,
        )

    return app


def serve_main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="rootsim-serve",
        description=(
            "Serve cached analysis results over saved rootsim datasets "
            "and live streaming checkpoints."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help=(
            "dataset/checkpoint directories to host, or directories "
            "whose children are scanned for them"
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8141,
        help="bind port (0 picks an ephemeral port, printed on startup)",
    )
    parser.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="result-cache entry bound",
    )
    parser.add_argument(
        "--cache-mb",
        type=float,
        default=256.0,
        help="result-cache byte bound, in MiB",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "stdlib", "fastapi"),
        default="auto",
        help=(
            "HTTP stack: stdlib ThreadingHTTPServer (no deps) or "
            "FastAPI+uvicorn ([serving] extra); auto prefers stdlib"
        ),
    )
    args = parser.parse_args(argv)

    try:
        catalog = Catalog.from_paths(args.paths)
    except Exception as exc:
        print(f"rootsim-serve: {exc}", file=sys.stderr)
        return 2
    cache = ResultCache(
        max_entries=args.cache_entries,
        max_bytes=int(args.cache_mb * 1024 * 1024),
    )
    service = AnalysisService(catalog, cache=cache)

    if args.backend == "fastapi":
        try:
            import uvicorn
        except ImportError:
            print(
                "rootsim-serve: --backend fastapi needs the [serving] "
                "extra (fastapi + uvicorn)",
                file=sys.stderr,
            )
            return 2
        app = make_fastapi_app(service)
        print(
            f"rootsim-serve: {len(catalog)} dataset(s) "
            f"[{', '.join(catalog.ids())}] on http://{args.host}:{args.port} "
            f"(fastapi)",
            flush=True,
        )
        uvicorn.run(app, host=args.host, port=args.port, log_level="warning")
        return 0

    server = run_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    print(
        f"rootsim-serve: {len(catalog)} dataset(s) "
        f"[{', '.join(catalog.ids())}] on http://{host}:{port} (stdlib)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(serve_main())
