"""Framework-agnostic request handling for the analysis server.

:class:`AnalysisService` owns the catalog and the result cache and maps
``(method, path, query, headers)`` to a :class:`Response` — plain data a
stdlib ``BaseHTTPRequestHandler`` or a FastAPI adapter can both write
out.  Keeping the logic here means the two backends cannot drift: they
serve byte-identical documents because they *are* the same handler.

Routes::

    GET  /healthz                          liveness probe
    GET  /catalog                          every hosted dataset, described
    GET  /stats                            cache counters + entry states
    GET  /datasets/{id}                    one entry, described
    GET  /datasets/{id}/analyses/{name}    canonical analysis JSON (cached)
    GET  /datasets/{id}/figures/{name}     canonical figure-group JSON (cached)
    POST /cache/clear                      drop every cached result

Caching contract:

* Every dataset-scoped response carries a strong ``ETag`` of
  ``"<fingerprint>:<watermark>"``; a repeat client sending
  ``If-None-Match`` gets a bodyless ``304`` without touching the cache.
* A ``?fingerprint=`` query pin is verified against the entry's current
  fingerprint and answered ``409`` on mismatch — the HTTP twin of
  ``rootsim-analyze --scenario`` refusing a dataset from a different
  study.
* Before serving from an entry, the watcher polls its directory; a
  watermark move invalidates exactly that study's stale cache lines and
  reloads the dataset, so a live checkpoint's partial results are
  re-served fresh as chunks seal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.data.schema import DatasetError
from repro.serving.cache import ResultCache, ResultKey
from repro.serving.catalog import Catalog, CatalogEntry

__all__ = ["AnalysisService", "Response"]

JSON_TYPE = "application/json; charset=utf-8"


@dataclass
class Response:
    """One HTTP response, backend-agnostic."""

    status: int
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)


def _json_response(status: int, body: bytes, **headers: str) -> Response:
    return Response(
        status=status,
        body=body,
        headers={"Content-Type": JSON_TYPE, **headers},
    )


class AnalysisService:
    """The server's brain: catalog + cache + routing."""

    def __init__(
        self,
        catalog: Catalog,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self.catalog = catalog
        self.cache = cache if cache is not None else ResultCache()
        self._refresh_locks: Dict[str, threading.Lock] = {
            entry_id: threading.Lock() for entry_id in catalog.ids()
        }

    # -- helpers -----------------------------------------------------------------

    @staticmethod
    def _error_body(message: str, **extra: object) -> bytes:
        from repro.analysis.summaries import canonical_json_bytes

        return canonical_json_bytes({"error": message, **extra})

    def _refresh(self, entry: CatalogEntry) -> None:
        """Poll the entry's directory; on watermark movement drop that
        study's stale cache lines (other datasets are untouched)."""
        with self._refresh_locks[entry.id]:
            changed = entry.refresh()
        if changed is not None:
            self.cache.invalidate_fingerprint(
                changed.fingerprint, keep_watermark=changed.watermark
            )

    @staticmethod
    def _etag(entry: CatalogEntry) -> str:
        state = entry.state
        return f'"{state.fingerprint}:{state.watermark}"'

    def _gate(
        self,
        entry: CatalogEntry,
        query: Dict[str, str],
        headers: Dict[str, str],
    ) -> Optional[Response]:
        """The shared preconditions of every dataset-scoped route:
        ``?fingerprint=`` pin (409 on mismatch), then ``If-None-Match``
        (bodyless 304 on a current ETag).  ``None`` means proceed."""
        pinned = query.get("fingerprint")
        state = entry.state
        if pinned is not None and pinned != state.fingerprint:
            return _json_response(
                409,
                self._error_body(
                    f"fingerprint mismatch: dataset {entry.id!r} holds "
                    f"{state.fingerprint}, request pinned {pinned}",
                    expected=pinned,
                    actual=state.fingerprint,
                ),
            )
        etag = self._etag(entry)
        if headers.get("if-none-match") == etag:
            return Response(status=304, headers={"ETag": etag})
        return None

    # -- routing -----------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        """Serve one request.  *headers* keys must be lower-cased by the
        backend; *query* holds single string values per parameter."""
        query = query or {}
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        parts = [part for part in path.split("/") if part]

        if method == "POST":
            if parts == ["cache", "clear"]:
                return self._handle_cache_clear()
            if self._route_exists(parts):
                return self._method_not_allowed(path)
            return self._not_found(path)
        if method != "GET":
            return self._method_not_allowed(path)

        if parts == ["healthz"]:
            return self._handle_healthz()
        if parts == ["catalog"]:
            return self._handle_catalog()
        if parts == ["stats"]:
            return self._handle_stats()
        if parts and parts[0] == "datasets" and 2 <= len(parts) <= 4:
            try:
                entry = self.catalog.entry(parts[1])
            except KeyError as exc:
                return _json_response(
                    404, self._error_body(str(exc), hosted=self.catalog.ids())
                )
            self._refresh(entry)
            if len(parts) == 2:
                return self._handle_describe(entry, query, headers)
            if len(parts) == 4 and parts[2] in ("analyses", "figures"):
                kind = "analysis" if parts[2] == "analyses" else "figure"
                return self._handle_resource(entry, kind, parts[3], query, headers)
        return self._not_found(path)

    @staticmethod
    def _route_exists(parts) -> bool:
        return bool(parts) and parts[0] in ("healthz", "catalog", "stats", "datasets")

    def _not_found(self, path: str) -> Response:
        return _json_response(
            404,
            self._error_body(
                f"no route for {path}",
                routes=[
                    "/healthz",
                    "/catalog",
                    "/stats",
                    "/datasets/{id}",
                    "/datasets/{id}/analyses/{name}",
                    "/datasets/{id}/figures/{name}",
                ],
            ),
        )

    def _method_not_allowed(self, path: str) -> Response:
        return _json_response(
            405, self._error_body(f"method not allowed on {path}")
        )

    # -- route bodies ------------------------------------------------------------

    def _handle_healthz(self) -> Response:
        from repro.analysis.summaries import canonical_json_bytes

        return _json_response(
            200,
            canonical_json_bytes(
                {"status": "ok", "datasets": len(self.catalog)}
            ),
        )

    def _handle_catalog(self) -> Response:
        from repro.analysis.summaries import canonical_json_bytes

        for entry in self.catalog.entries():
            self._refresh(entry)
        return _json_response(
            200,
            canonical_json_bytes(
                {"datasets": [e.describe() for e in self.catalog.entries()]}
            ),
        )

    def _handle_stats(self) -> Response:
        from repro.analysis.summaries import canonical_json_bytes

        entries = {}
        for entry in self.catalog.entries():
            state = entry.state
            entries[entry.id] = {
                "kind": state.kind,
                "fingerprint": state.fingerprint,
                "watermark": state.watermark,
            }
        return _json_response(
            200,
            canonical_json_bytes(
                {"cache": self.cache.snapshot(), "datasets": entries}
            ),
        )

    def _handle_cache_clear(self) -> Response:
        from repro.analysis.summaries import canonical_json_bytes

        return _json_response(
            200, canonical_json_bytes({"cleared": self.cache.clear()})
        )

    def _handle_describe(
        self,
        entry: CatalogEntry,
        query: Dict[str, str],
        headers: Dict[str, str],
    ) -> Response:
        from repro.analysis.summaries import canonical_json_bytes

        gate = self._gate(entry, query, headers)
        if gate is not None:
            return gate
        return _json_response(
            200,
            canonical_json_bytes(entry.describe()),
            ETag=self._etag(entry),
        )

    def _handle_resource(
        self,
        entry: CatalogEntry,
        kind: str,
        name: str,
        query: Dict[str, str],
        headers: Dict[str, str],
    ) -> Response:
        gate = self._gate(entry, query, headers)
        if gate is not None:
            return gate
        known, compute = self._resource_compute(entry, kind, name)
        if not known:
            return _json_response(
                404,
                self._error_body(
                    f"unknown {kind} {name!r} for dataset {entry.id!r}",
                    available=(
                        entry.analyses() if kind == "analysis" else entry.figures()
                    ),
                ),
            )
        state = entry.state
        key = ResultKey(
            fingerprint=state.fingerprint,
            kind=kind,
            name=name,
            watermark=state.watermark,
        )
        try:
            body = self.cache.get_or_compute(key, compute)
        except DatasetError as exc:
            return _json_response(
                409, self._error_body(str(exc), resource=f"{kind}:{name}")
            )
        return _json_response(200, body, ETag=self._etag(entry))

    def _resource_compute(
        self, entry: CatalogEntry, kind: str, name: str
    ) -> Tuple[bool, Optional[object]]:
        """Whether *name* is a known resource, and the thunk producing
        its canonical bytes (run under the cache's single-flight)."""
        if kind == "analysis":
            from repro.analysis import registry
            from repro.analysis.summaries import analysis_json_bytes

            if name not in registry.names():
                return False, None
            return True, lambda: analysis_json_bytes(entry.dataset(), name)
        from repro.analysis.summaries import canonical_json_bytes
        from repro.reportgen import (
            GROUP_ARTEFACTS,
            group_requirements_error,
            render_group,
        )

        if name not in GROUP_ARTEFACTS:
            return False, None

        def compute() -> bytes:
            dataset = entry.dataset()
            problem = group_requirements_error(name, dataset)
            if problem is not None:
                raise DatasetError(problem)
            return canonical_json_bytes(
                {"figure": name, "contents": render_group(name, dataset)}
            )

        return True, compute
