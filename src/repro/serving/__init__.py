"""Analysis-serving layer: cached query service over saved datasets.

The collect-once / analyse-many split of the paper, turned into a
long-running service: ``rootsim-serve`` hosts a catalog of saved dataset
and streaming-checkpoint directories, serves every registered analysis
and report figure group as canonical JSON, and fronts the computations
with a bounded single-flight LRU cache keyed on *(study fingerprint,
resource, watermark)*.  Live checkpoints stay servable while they grow:
a per-directory watcher observes sealed chunks and invalidates exactly
the affected cache lines.

The HTTP stack is pluggable — a dependency-free stdlib
``ThreadingHTTPServer`` by default, FastAPI/uvicorn via the
``[serving]`` extra — and both wrap the same framework-agnostic
:class:`~repro.serving.service.AnalysisService`, whose responses are
byte-identical to ``rootsim-analyze DIR NAME --json``.
"""

from repro.serving.app import make_fastapi_app, run_server, serve_main
from repro.serving.cache import CacheStats, ResultCache, ResultKey
from repro.serving.catalog import Catalog, CatalogEntry, discover
from repro.serving.service import AnalysisService, Response

__all__ = [
    "AnalysisService",
    "CacheStats",
    "Catalog",
    "CatalogEntry",
    "Response",
    "ResultCache",
    "ResultKey",
    "discover",
    "make_fastapi_app",
    "run_server",
    "serve_main",
]
