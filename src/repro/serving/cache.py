"""Bounded LRU result cache with single-flight computation.

The serving layer's cache maps a :class:`ResultKey` — *(study
fingerprint, resource kind, resource name, watermark)* — to the
canonical response bytes for that resource.  The key design carries the
correctness argument:

* the **fingerprint** ties an entry to the exact study configuration
  that produced the data (same scenario on two directories → shared
  entry; different seed → different entry);
* the **watermark** ties it to the data extent.  A finalized dataset's
  watermark never moves, so its entries are immortal until evicted; a
  live checkpoint's watermark advances per sealed chunk, so entries
  computed over a partial prefix can never be served once more rows
  land — the service swaps the watermark it queries with, and
  :meth:`ResultCache.invalidate_fingerprint` reclaims the stale bytes.

Under a thundering herd (N concurrent requests for one cold key) exactly
one thread computes; the rest block on the in-flight entry and reuse its
result — the classic single-flight discipline, here per key with the
whole cache never locked during a compute.

Bounds are dual: entry count and total cached bytes.  Eviction is LRU on
access order (an ``OrderedDict``), and an over-large single result is
still cached if it alone fits the byte bound.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, NamedTuple, Optional

__all__ = ["CacheStats", "ResultCache", "ResultKey"]


class ResultKey(NamedTuple):
    """What uniquely identifies one cached serving result."""

    fingerprint: str
    kind: str  # "analysis" | "figure"
    name: str
    watermark: str


@dataclass
class CacheStats:
    """Monotonic counters (served by ``/stats``, read by the bench)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    #: Requests that neither hit nor computed: they waited on another
    #: thread's in-flight computation of the same key.
    coalesced: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def snapshot(self) -> Dict[str, int]:
        with self.lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "coalesced": self.coalesced,
            }

    def _bump(self, attr: str) -> None:
        with self.lock:
            setattr(self, attr, getattr(self, attr) + 1)


class _InFlight:
    """One in-progress computation other threads can wait on."""

    def __init__(self) -> None:
        self.done = threading.Event()
        self.value: Optional[bytes] = None
        self.error: Optional[BaseException] = None


class ResultCache:
    """Thread-safe bounded LRU over canonical response bytes."""

    def __init__(self, max_entries: int = 256, max_bytes: int = 256 * 1024 * 1024) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1: {max_entries}")
        if max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1: {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[ResultKey, bytes]" = OrderedDict()
        self._bytes = 0
        self._inflight: Dict[ResultKey, _InFlight] = {}

    # -- core --------------------------------------------------------------------

    def get(self, key: ResultKey) -> Optional[bytes]:
        """The cached bytes for *key*, refreshing its LRU position."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.stats._bump("hits")
                return value
        return None

    def get_or_compute(self, key: ResultKey, compute: Callable[[], bytes]) -> bytes:
        """The bytes for *key*, computing once under a thundering herd.

        The first thread to miss installs an in-flight marker, runs
        *compute* outside the cache lock, stores the result and wakes
        the waiters; concurrent requests for the same key block on the
        marker instead of recomputing.  A failed compute propagates its
        exception to every waiter and leaves the key uncached.
        """
        flight: Optional[_InFlight] = None
        leader = False
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
                self.stats._bump("hits")
                return value
            flight = self._inflight.get(key)
            if flight is None:
                flight = self._inflight[key] = _InFlight()
                leader = True

        if not leader:
            self.stats._bump("coalesced")
            flight.done.wait()
            if flight.error is not None:
                raise flight.error
            assert flight.value is not None
            return flight.value

        self.stats._bump("misses")
        try:
            value = compute()
        except BaseException as exc:
            flight.error = exc
            raise
        else:
            flight.value = value
            self.put(key, value)
            return value
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()

    def put(self, key: ResultKey, value: bytes) -> None:
        """Insert (or refresh) *key*, evicting LRU entries past bounds."""
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = value
            self._bytes += len(value)
            while self._entries and (
                len(self._entries) > self.max_entries
                or self._bytes > self.max_bytes
            ):
                if len(self._entries) == 1 and len(self._entries) <= self.max_entries:
                    # the sole (over-large) entry may stay: serving it
                    # beats recomputing it on every request
                    break
                evicted_key, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.stats._bump("evictions")

    # -- invalidation ------------------------------------------------------------

    def invalidate_fingerprint(
        self, fingerprint: str, keep_watermark: Optional[str] = None
    ) -> int:
        """Drop entries for *fingerprint* (all kinds and names), keeping
        those already at *keep_watermark*; returns the number dropped.

        This is the watcher's hook: when a checkpoint seals new chunks,
        only that study's stale-watermark entries die — every other
        dataset's cache lines survive untouched.
        """
        with self._lock:
            doomed = [
                key for key in self._entries
                if key.fingerprint == fingerprint
                and key.watermark != keep_watermark
            ]
            for key in doomed:
                self._bytes -= len(self._entries.pop(key))
            if doomed:
                with self.stats.lock:
                    self.stats.invalidations += len(doomed)
        return len(doomed)

    def clear(self) -> int:
        """Drop everything (the bench's cold-path reset); returns the
        number of entries dropped."""
        with self._lock:
            dropped = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            if dropped:
                with self.stats.lock:
                    self.stats.invalidations += dropped
        return dropped

    # -- introspection -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def cached_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def keys(self):
        with self._lock:
            return list(self._entries)

    def snapshot(self) -> Dict[str, object]:
        """Size + counters, JSON-shaped (the ``/stats`` payload)."""
        with self._lock:
            size = {"entries": len(self._entries), "bytes": self._bytes}
        return {
            **size,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            **self.stats.snapshot(),
        }
