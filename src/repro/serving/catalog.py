"""The served-directory catalog.

A :class:`Catalog` is the server's view of the datasets it hosts: each
entry wraps one dataset or streaming-checkpoint directory with its
:class:`~repro.data.watch.DatasetWatcher`, a watermark-keyed handle on
the loaded :class:`~repro.data.Dataset`, and the resource inventory
(runnable analyses, renderable figure groups) clients discover through
``/catalog``.

Entries load lazily and reload only when their watermark moves: a
finalized dataset maps its columns once and keeps them for the life of
the process; a live checkpoint re-stitches its sealed chunks when (and
only when) :meth:`CatalogEntry.refresh` observes a new seal.  Loads are
serialized per entry so a request herd arriving at a fresh watermark
maps the directory once.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.data import DatasetError, load_dataset
from repro.data.io import MANIFEST_NAME
from repro.data.watch import DatasetWatcher, ServedState

__all__ = ["Catalog", "CatalogEntry", "discover"]


def _is_servable(path: Path) -> bool:
    return (path / MANIFEST_NAME).exists() or (path / "CHECKPOINT.json").exists()


def discover(paths: Iterable[Union[str, Path]]) -> List[Path]:
    """Expand *paths* into servable directories.

    Each path is either itself a dataset/checkpoint directory, or a root
    whose immediate children are scanned (one level — a datasets/ layout,
    not a filesystem crawl).  Order is deterministic: the given order,
    children sorted by name.  A path yielding nothing raises — a server
    with an empty catalog is a misconfiguration, not a service.
    """
    found: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if _is_servable(path):
            found.append(path)
            continue
        if path.is_dir():
            children = sorted(
                child for child in path.iterdir()
                if child.is_dir() and _is_servable(child)
            )
            if children:
                found.extend(children)
                continue
        raise DatasetError(
            f"nothing servable at {path}: expected a dataset or checkpoint "
            f"directory, or a directory containing them"
        )
    return found


class CatalogEntry:
    """One served directory: identity, watcher, and the loaded dataset."""

    def __init__(self, entry_id: str, path: Path) -> None:
        self.id = entry_id
        self.path = path
        self._watcher = DatasetWatcher(path)
        self._lock = threading.Lock()
        self._loaded: Optional[Tuple[str, object]] = None  # (watermark, Dataset)

    @property
    def state(self) -> ServedState:
        return self._watcher.state

    def refresh(self) -> Optional[ServedState]:
        """Poll the directory; the new state when the watermark moved
        (the caller invalidates its cache lines), else ``None``."""
        return self._watcher.poll()

    def dataset(self):
        """The dataset at the current watermark (loaded/reloaded lazily)."""
        watermark = self._watcher.state.watermark
        with self._lock:
            if self._loaded is None or self._loaded[0] != watermark:
                self._loaded = (watermark, load_dataset(self.path))
            return self._loaded[1]

    # -- resource inventory ------------------------------------------------------

    def analyses(self) -> List[str]:
        """Registered analyses this entry can serve, passive included."""
        from repro.analysis import registry
        from repro.analysis.summaries import PASSIVE_ANALYSES

        dataset = self.dataset()
        names = set(registry.runnable(dataset))
        # passive analyses replay from disk aggregates, or rebuild from
        # the recorded seed — either way they need a study fingerprint
        passive = dataset.passive
        if (passive is not None and "isp" in passive.names()) or (
            dataset.study is not None
        ):
            names.update(PASSIVE_ANALYSES)
        return sorted(names)

    def figures(self) -> List[str]:
        """Renderable artefact groups (each serves its figure/table set)."""
        from repro.reportgen import GROUP_ARTEFACTS, group_requirements_error

        dataset = self.dataset()
        return sorted(
            group for group in GROUP_ARTEFACTS
            if group_requirements_error(group, dataset) is None
        )

    def describe(self) -> Dict[str, object]:
        """The ``/datasets/{id}`` document body (no analysis runs)."""
        state = self.state
        dataset = self.dataset()
        scenario = ((state.study or {}).get("scenario") or {})
        doc: Dict[str, object] = {
            "id": self.id,
            "kind": state.kind,
            "fingerprint": state.fingerprint,
            "watermark": state.watermark,
            "summary": dataset.summary(),
            "tables": dataset.table_names(),
            "analyses": self.analyses(),
            "figures": self.figures(),
        }
        if scenario:
            doc["scenario"] = {
                "name": scenario.get("name"),
                "fingerprint": scenario.get("fingerprint"),
            }
        checkpoint = (dataset.meta or {}).get("checkpoint")
        if checkpoint:
            doc["checkpoint"] = checkpoint
        return doc


class Catalog:
    """Every entry the server hosts, keyed by id (directory basename,
    suffixed on collision in discovery order: ``run``, ``run-2``, ...)."""

    def __init__(self, directories: Iterable[Union[str, Path]]) -> None:
        self._entries: Dict[str, CatalogEntry] = {}
        for path in directories:
            path = Path(path)
            entry_id = path.name or str(path)
            if entry_id in self._entries:
                bump = 2
                while f"{entry_id}-{bump}" in self._entries:
                    bump += 1
                entry_id = f"{entry_id}-{bump}"
            self._entries[entry_id] = CatalogEntry(entry_id, path)

    @classmethod
    def from_paths(cls, paths: Iterable[Union[str, Path]]) -> "Catalog":
        """Build a catalog by :func:`discover`-ing *paths*."""
        return cls(discover(paths))

    def ids(self) -> List[str]:
        return list(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def entry(self, entry_id: str) -> CatalogEntry:
        try:
            return self._entries[entry_id]
        except KeyError:
            raise KeyError(
                f"no catalog entry {entry_id!r}; "
                f"hosted: {', '.join(self.ids()) or '(none)'}"
            ) from None

    def entries(self) -> List[CatalogEntry]:
        return list(self._entries.values())
