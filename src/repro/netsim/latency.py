"""RTT model.

A request's RTT decomposes into:

* propagation along the routed path (client -> entry point -> haul ->
  site), at the paper's ~10 ms per 1,000 km round-trip rule,
* per-hop equipment/queueing overhead,
* the client network's last-mile penalty,
* request-level jitter (deterministic per request via :mod:`mix`).

Path *detours* — not raw distance — are what create the paper's per-family
RTT asymmetries, so the model takes the route's full geographic path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.geo.coords import RTT_MS_PER_KM

if TYPE_CHECKING:
    from repro.netsim.routing import Route

from repro.netsim.mix import mix_float, mix_str

#: Milliseconds of overhead per router hop (forwarding + queueing).
PER_HOP_MS = 0.25

#: Multiplicative jitter spread (uniform in [1 - J, 1 + 3J]; skewed up,
#: queues add delay but never remove it below the propagation floor).
JITTER = 0.05


def route_rtt_ms(
    route: "Route",
    last_mile_ms: float,
    request_key: int = 0,
) -> float:
    """The RTT a single request over *route* experiences.

    *request_key* individualises jitter per request (pass e.g. a mix of
    probe identity and timestamp); identical keys give identical RTTs.
    """
    propagation = route.path_km * RTT_MS_PER_KM
    overhead = PER_HOP_MS * route.hop_count + last_mile_ms + route.extra_ms
    base = propagation + overhead
    u = mix_float(route.stable_key, request_key)
    jitter_factor = 1.0 - JITTER + u * 4.0 * JITTER
    return base * jitter_factor
