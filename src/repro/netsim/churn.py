"""Routing churn: how often a client's anycast catchment flips.

The paper's Figure 3 shows strongly heterogeneous per-VP change counts —
a heavy-tailed distribution whose median differs per letter and address
family (b.root: median 8 changes for both families over 174 days; g.root:
36 on IPv4 but 64 on IPv6).  We model each (client, service address) pair
as a flap process:

* the pair draws a per-campaign expected change count from a lognormal
  around the letter/family target median (heavy tail: a few VPs see
  hundreds of changes, reproducing the Figure 3 long tail),
* each measurement interval then flips the active route with the
  corresponding per-interval probability; flips mostly bounce between the
  best and second-best route, occasionally reaching deeper alternates.

Targets for {b, g} × {v4, v6} are the paper's reported medians; the other
letters interpolate by deployment size and the paper's observation that
{c, h} also churn more on IPv6.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.netsim.mix import mix64, mix_float, mix_str

#: Target *median* total catchment changes per (letter, family) over the
#: full 174-day / 30-minute-interval campaign (paper §4.2 for b and g;
#: remaining letters scaled by deployment size, v6 > v4 for c and h).
TARGET_MEDIAN_CHANGES: Dict[Tuple[str, int], float] = {
    ("a", 4): 12, ("a", 6): 13,
    ("b", 4): 8, ("b", 6): 8,
    ("c", 4): 16, ("c", 6): 30,
    ("d", 4): 22, ("d", 6): 24,
    ("e", 4): 26, ("e", 6): 28,
    ("f", 4): 32, ("f", 6): 34,
    ("g", 4): 36, ("g", 6): 64,
    ("h", 4): 14, ("h", 6): 26,
    ("i", 4): 20, ("i", 6): 22,
    ("j", 4): 24, ("j", 6): 26,
    ("k", 4): 18, ("k", 6): 20,
    ("l", 4): 16, ("l", 6): 18,
    ("m", 4): 9, ("m", 6): 10,
}

#: The campaign the targets refer to: 174 days at 30-minute intervals.
REFERENCE_ROUNDS = 174 * 48

#: Lognormal sigma of the per-pair multiplier (tail heaviness).
PAIR_SIGMA = 1.5


@dataclass
class ChurnState:
    """Mutable per-(client, address) flap state.

    Routing excursions are short-lived: the preferred route disappears
    for a couple of measurement intervals and comes back (away + back =
    two observed changes).  ``excursion_left`` counts the remaining
    displaced rounds.
    """

    excursion_prob: float
    current_index: int = 0
    excursion_left: int = 0


class ChurnModel:
    """Creates and advances per-pair churn state deterministically."""

    def __init__(self, seed: int, expected_rounds: int = REFERENCE_ROUNDS) -> None:
        if expected_rounds <= 0:
            raise ValueError(f"expected_rounds must be positive: {expected_rounds}")
        self.seed = seed
        self.expected_rounds = expected_rounds
        self._states: Dict[Tuple[int, str], ChurnState] = {}

    def _pair_multiplier(self, pair_hash: int) -> float:
        """Heavy-tailed per-pair multiplier (lognormal via inverse-ish
        transform on two mixed uniforms — Box-Muller)."""
        u1 = mix_float(self.seed, pair_hash, 1)
        u2 = mix_float(self.seed, pair_hash, 2)
        u1 = max(u1, 1e-12)
        z = math.sqrt(-2.0 * math.log(u1)) * math.cos(2.0 * math.pi * u2)
        return math.exp(PAIR_SIGMA * z)

    def state_for(
        self, client_id: int, address: str, letter: str, family: int
    ) -> ChurnState:
        """The (lazily created) churn state for one pair."""
        key = (client_id, address)
        if key not in self._states:
            target = TARGET_MEDIAN_CHANGES.get((letter, family), 16.0)
            pair_hash = mix64(client_id, mix_str(address))
            expected_changes = target * self._pair_multiplier(pair_hash)
            # Each excursion contributes two observed changes (away, back).
            prob = min(0.4, expected_changes / (2.0 * self.expected_rounds))
            self._states[key] = ChurnState(excursion_prob=prob)
        return self._states[key]

    def select_index(
        self,
        client_id: int,
        address: str,
        letter: str,
        family: int,
        round_no: int,
        n_candidates: int,
    ) -> int:
        """The candidate index the pair uses in measurement *round_no*.

        Must be called with non-decreasing ``round_no`` per pair; each
        call advances the flap process by one interval.
        """
        state = self.state_for(client_id, address, letter, family)
        if n_candidates <= 1:
            state.current_index = 0
            return 0
        if state.excursion_left > 0:
            state.excursion_left -= 1
            if state.excursion_left == 0:
                state.current_index = 0
        elif state.current_index == 0:
            u = mix_float(self.seed, client_id, mix_str(address), round_no)
            if u < state.excursion_prob:
                # Excursion depth: mostly the runner-up; duration: short
                # (1-3 rounds), so displaced time stays a sliver of the
                # campaign even for flappy pairs.
                depth_u = mix_float(self.seed, client_id, round_no, 7)
                depth = 1 + int(depth_u * depth_u * (n_candidates - 1))
                state.current_index = min(depth, n_candidates - 1)
                duration_u = mix_float(self.seed, client_id, round_no, 11)
                state.excursion_left = 1 + int(duration_u * 3.0)
        return min(state.current_index, n_candidates - 1)
