"""Inter-domain routing fabric for anycast.

Models the pieces of the Internet the paper's analyses consume:

* IXPs and colocation facilities (shared last-hop infrastructure — RQ1),
* transit providers with per-address-family peering policies, including
  an AS6939-like open-IPv6 transit and an AS12956-like South-America
  carrier (the two ASes the paper singles out in §5/§6),
* BGP-style route selection into anycast catchments, with routing churn,
* traceroute and RTT models feeding the co-location, stability and
  latency analyses.
"""

from repro.netsim.facilities import Ixp, Facility, IXP_CATALOG, build_facilities
from repro.netsim.transit import TransitProvider, TRANSIT_CATALOG, OPEN_V6_TRANSIT, SA_V4_TRANSIT
from repro.netsim.attachment import Attachment
from repro.netsim.routing import Route, RouteSelector
from repro.netsim.traceroute import TracerouteHop, TracerouteResult, run_traceroute
from repro.netsim.latency import route_rtt_ms
from repro.netsim.topology import NetworkFabric

__all__ = [
    "Ixp",
    "Facility",
    "IXP_CATALOG",
    "build_facilities",
    "TransitProvider",
    "TRANSIT_CATALOG",
    "OPEN_V6_TRANSIT",
    "SA_V4_TRANSIT",
    "Attachment",
    "Route",
    "RouteSelector",
    "TracerouteHop",
    "TracerouteResult",
    "run_traceroute",
    "route_rtt_ms",
    "NetworkFabric",
]
