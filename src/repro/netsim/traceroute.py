"""Traceroute simulation.

Renders a :class:`Route` into the hop list an ``mtr``/``traceroute`` run
would record.  Hops can be silent (no ICMP reply) — the paper treats
missed hops as unique infrastructure, making its co-location estimate a
lower bound; the analysis layer here does the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.geo.coords import RTT_MS_PER_KM, haversine_km
from repro.netsim.attachment import Attachment
from repro.netsim.mix import mix_float, mix_str
from repro.netsim.routing import Route

#: Probability an intermediate router does not answer probes.
HOP_SILENT_PROB = 0.03


@dataclass(frozen=True)
class TracerouteHop:
    """One traceroute hop: identifier (None = no reply) and RTT."""

    identifier: Optional[str]
    rtt_ms: float


@dataclass(frozen=True)
class TracerouteResult:
    """A full traceroute to one root service address."""

    target: str
    hops: Tuple[TracerouteHop, ...]

    @property
    def second_to_last_hop(self) -> Optional[str]:
        """The co-location signal (None when that hop was silent)."""
        if len(self.hops) < 2:
            return None
        return self.hops[-2].identifier

    @property
    def destination_rtt_ms(self) -> float:
        """RTT of the final hop — the target itself."""
        return self.hops[-1].rtt_ms


def _hop_identifiers(att: Attachment, route: Route) -> List[str]:
    """The identifier sequence for a route (before reply-loss)."""
    hops = [
        f"gw.as{att.asn}",
        f"border.as{att.asn}.{att.city.iata.lower()}",
    ]
    if route.via in ("peer", "local"):
        if route.via == "peer" and route.facility.ixp is not None:
            hops.append(f"fabric.{route.facility.ixp.ixp_id}")
        else:
            hops.append(f"pni.as{att.asn}.{route.site.city.iata.lower()}")
    else:
        assert route.transit is not None
        hops.append(f"pop.as{route.transit.asn}.{route.entry_city.iata.lower()}")
        if route.hop_count >= 6:
            hub = route.transit.nearest_pop(route.site.city)
            hops.append(f"core.as{route.transit.asn}.{hub.iata.lower()}")
    hops.append(route.second_to_last_hop)
    return hops


def run_traceroute(
    att: Attachment,
    route: Route,
    address: str,
    destination_rtt_ms: float,
    probe_key: int = 0,
) -> TracerouteResult:
    """Simulate one traceroute along *route* to *address*.

    *destination_rtt_ms* is the request RTT already computed by the
    latency model; intermediate hop RTTs interpolate toward it along the
    geographic path.  *probe_key* varies reply loss per probe.
    """
    identifiers = _hop_identifiers(att, route)
    total_hops = len(identifiers) + 1  # + destination
    hops: List[TracerouteHop] = []
    access_km = haversine_km(att.city.location, route.entry_city.location)
    # Cumulative distance milestones per hop position (rough but ordered).
    milestones = [
        0.0,  # gw
        min(50.0, access_km),  # AS border
    ]
    while len(milestones) < len(identifiers) - 1:
        milestones.append(access_km)  # entry / core hops
    milestones.append(route.path_km)  # facility edge
    for position, identifier in enumerate(identifiers):
        silent = (
            mix_float(mix_str(identifier), probe_key, position) < HOP_SILENT_PROB
        )
        share = milestones[position] / route.path_km if route.path_km > 0 else 0.0
        rtt = max(0.3, destination_rtt_ms * min(1.0, share))
        hops.append(TracerouteHop(None if silent else identifier, rtt))
    hops.append(TracerouteHop(address, destination_rtt_ms))
    assert len(hops) == total_hops
    return TracerouteResult(target=address, hops=tuple(hops))
