"""Route epochs: the per-pair campaign compiled into constant-route runs.

Between churn flips a (VP, service address) pair's route is static, so
the per-round call chain ``RouteSelector.select`` → ``ChurnModel.
select_index`` — tens of millions of dict lookups and hash mixes over a
campaign — collapses into a handful of ``(round_start, round_end,
candidate_index)`` *epochs* per pair.  The flap process in
:class:`~repro.netsim.churn.ChurnModel` only ever leaves the preferred
route on an excursion trigger, and triggers are sparse, so the epoch
list is short: one epoch when the pair never flips, ``2k (+1)`` epochs
for ``k`` excursions.

The compiler replays the exact :meth:`ChurnModel.select_index` state
machine, but evaluates the per-round trigger uniform for every round at
once (:func:`repro.netsim.mix.mix_float_array`) and then walks only the
rounds whose uniform clears the excursion probability.  The resulting
index sequence is *identical* to calling ``select_index`` round by
round — asserted by tests/netsim/test_epochs.py over the full candidate
count / probability space — which is what lets the epoch-compiled
campaign engine keep collector output byte-identical to the scalar
prober.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.netsim.churn import ChurnModel
from repro.netsim.mix import mix_float, mix64_prefix, mix_float_array, mix_str

#: One epoch: the pair uses candidate ``index`` for rounds
#: ``[start, end)``.
Epoch = Tuple[int, int, int]


def compile_pair_epochs(
    churn: ChurnModel,
    client_id: int,
    address: str,
    letter: str,
    family: int,
    n_rounds: int,
    n_candidates: int,
) -> List[Epoch]:
    """The pair's campaign as ``(round_start, round_end, index)`` epochs.

    Equivalent to ``[churn.select_index(client_id, address, letter,
    family, r, n_candidates) for r in range(n_rounds)]`` run-length
    encoded — but without advancing any churn state, so compilation can
    interleave freely with (or replace) scalar selection.
    """
    if n_rounds <= 0:
        return []
    if n_candidates <= 1:
        return [(0, n_rounds, 0)]

    state = churn.state_for(client_id, address, letter, family)
    prob = state.excursion_prob
    seed = churn.seed

    # Per-round trigger uniforms, evaluated in bulk.  Only the rounds
    # where the state machine actually *checks* the trigger (at the
    # preferred route, not inside or immediately after an excursion) are
    # consumed below.
    rounds = np.arange(n_rounds, dtype=np.int64)
    u = mix_float_array(mix64_prefix(seed, client_id, mix_str(address)), rounds)
    triggers = np.nonzero(u < prob)[0]

    epochs: List[Epoch] = []
    cursor = 0  # first round not yet assigned to an epoch
    resume = 0  # first round at which the trigger check is live again
    for t in triggers:
        t = int(t)
        if t < resume:
            continue  # inside an excursion, or the untriggered return round
        depth_u = mix_float(seed, client_id, t, 7)
        depth = 1 + int(depth_u * depth_u * (n_candidates - 1))
        depth = min(depth, n_candidates - 1)
        duration_u = mix_float(seed, client_id, t, 11)
        duration = 1 + int(duration_u * 3.0)
        if t > cursor:
            epochs.append((cursor, t, 0))
        end = min(t + duration, n_rounds)
        epochs.append((t, end, depth))
        cursor = end
        # The round the pair returns to the preferred route takes the
        # excursion-countdown branch, so the next trigger check is one
        # round later still.
        resume = t + duration + 1
        if cursor >= n_rounds:
            break
    if cursor < n_rounds:
        epochs.append((cursor, n_rounds, 0))
    return epochs


def epoch_change_count(epochs: List[Epoch]) -> int:
    """Consecutive-round route changes implied by an epoch list.

    Adjacent epochs always carry different candidate indices (an
    excursion departs from and returns to index 0), and candidate lists
    are site-deduplicated, so each boundary is exactly one observed
    catchment change.
    """
    return max(0, len(epochs) - 1)
