"""Route epochs: the per-pair campaign compiled into constant-route runs.

Between churn flips a (VP, service address) pair's route is static, so
the per-round call chain ``RouteSelector.select`` → ``ChurnModel.
select_index`` — tens of millions of dict lookups and hash mixes over a
campaign — collapses into a handful of ``(round_start, round_end,
candidate_index)`` *epochs* per pair.  The flap process in
:class:`~repro.netsim.churn.ChurnModel` only ever leaves the preferred
route on an excursion trigger, and triggers are sparse, so the epoch
list is short: one epoch when the pair never flips, ``2k (+1)`` epochs
for ``k`` excursions.

The compiler replays the exact :meth:`ChurnModel.select_index` state
machine, but evaluates the per-round trigger uniform for every round at
once (:func:`repro.netsim.mix.mix_float_array`) and then walks only the
rounds whose uniform clears the excursion probability.  The resulting
index sequence is *identical* to calling ``select_index`` round by
round — asserted by tests/netsim/test_epochs.py over the full candidate
count / probability space — which is what lets the epoch-compiled
campaign engine keep collector output byte-identical to the scalar
prober.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.netsim.churn import ChurnModel
from repro.netsim.mix import mix_float, mix64_prefix, mix_float_array, mix_str

#: One epoch: the pair uses candidate ``index`` for rounds
#: ``[start, end)``.
Epoch = Tuple[int, int, int]


def compile_pair_epochs(
    churn: ChurnModel,
    client_id: int,
    address: str,
    letter: str,
    family: int,
    n_rounds: int,
    n_candidates: int,
) -> List[Epoch]:
    """The pair's campaign as ``(round_start, round_end, index)`` epochs.

    Equivalent to ``[churn.select_index(client_id, address, letter,
    family, r, n_candidates) for r in range(n_rounds)]`` run-length
    encoded — but without advancing any churn state, so compilation can
    interleave freely with (or replace) scalar selection.
    """
    if n_rounds <= 0:
        return []
    if n_candidates <= 1:
        return [(0, n_rounds, 0)]

    state = churn.state_for(client_id, address, letter, family)
    prob = state.excursion_prob
    seed = churn.seed

    # Per-round trigger uniforms, evaluated in bulk.  Only the rounds
    # where the state machine actually *checks* the trigger (at the
    # preferred route, not inside or immediately after an excursion) are
    # consumed below.
    rounds = np.arange(n_rounds, dtype=np.int64)
    u = mix_float_array(mix64_prefix(seed, client_id, mix_str(address)), rounds)
    triggers = np.nonzero(u < prob)[0]

    epochs: List[Epoch] = []
    cursor = 0  # first round not yet assigned to an epoch
    resume = 0  # first round at which the trigger check is live again
    for t in triggers:
        t = int(t)
        if t < resume:
            continue  # inside an excursion, or the untriggered return round
        depth_u = mix_float(seed, client_id, t, 7)
        depth = 1 + int(depth_u * depth_u * (n_candidates - 1))
        depth = min(depth, n_candidates - 1)
        duration_u = mix_float(seed, client_id, t, 11)
        duration = 1 + int(duration_u * 3.0)
        if t > cursor:
            epochs.append((cursor, t, 0))
        end = min(t + duration, n_rounds)
        epochs.append((t, end, depth))
        cursor = end
        # The round the pair returns to the preferred route takes the
        # excursion-countdown branch, so the next trigger check is one
        # round later still.
        resume = t + duration + 1
        if cursor >= n_rounds:
            break
    if cursor < n_rounds:
        epochs.append((cursor, n_rounds, 0))
    return epochs


class PairEpochStream:
    """:func:`compile_pair_epochs` emitted one round range at a time.

    A full campaign's epoch lists dominate the epoch engine's memory at
    paper scale (~1.1M tuples across ~19k pairs); the streaming path
    only ever needs the epochs overlapping the chunk it is executing.
    This class keeps the per-pair *trigger rounds* (the sparse output of
    the bulk uniform scan — a few dozen int32s) plus the walk cursor,
    and :meth:`take` materialises exactly the epochs overlapping a
    requested range, with their **true** (unclipped) bounds.

    The concatenation of ``take(lo, hi)`` results over any ascending
    sequence of ranges covering ``[0, n_rounds)`` — deduplicating the
    boundary epochs shared by adjacent ranges — equals
    ``compile_pair_epochs(...)`` exactly, which is what keeps the
    streamed engine byte-identical to the materialized plan
    (tests/netsim/test_epochs.py pins the equivalence over the same
    parameter space as the compiler itself).
    """

    __slots__ = (
        "n_rounds",
        "n_candidates",
        "_seed",
        "_client_id",
        "_triggers",
        "_ti",
        "_cursor",
        "_resume",
        "_done",
        "_buffer",
        "_consumed_to",
    )

    def __init__(
        self,
        churn: ChurnModel,
        client_id: int,
        address: str,
        letter: str,
        family: int,
        n_rounds: int,
        n_candidates: int,
    ) -> None:
        self.n_rounds = n_rounds
        self.n_candidates = n_candidates
        self._seed = churn.seed
        self._client_id = client_id
        if n_rounds > 0 and n_candidates > 1:
            state = churn.state_for(client_id, address, letter, family)
            prob = state.excursion_prob
            rounds = np.arange(n_rounds, dtype=np.int64)
            u = mix_float_array(
                mix64_prefix(churn.seed, client_id, mix_str(address)), rounds
            )
            self._triggers = np.nonzero(u < prob)[0].astype(np.int32)
        else:
            self._triggers = np.empty(0, dtype=np.int32)
        self._ti = 0  # next unconsumed trigger
        self._cursor = 0  # rounds [0, cursor) are covered by emitted epochs
        self._resume = 0  # first round at which the trigger check is live
        self._done = n_rounds <= 0
        self._buffer: List[Epoch] = []  # emitted epochs not yet fully consumed
        self._consumed_to = 0

    def _fill(self, hi: int) -> None:
        """Extend the buffer until emitted epochs cover ``[0, hi)``."""
        if self.n_candidates <= 1:
            if not self._buffer and not self._done:
                self._buffer.append((0, self.n_rounds, 0))
                self._cursor = self.n_rounds
                self._done = True
            return
        seed = self._seed
        client_id = self._client_id
        n_rounds = self.n_rounds
        triggers = self._triggers
        while not self._done and self._cursor < hi:
            if self._ti >= len(triggers):
                self._buffer.append((self._cursor, n_rounds, 0))
                self._cursor = n_rounds
                self._done = True
                break
            t = int(triggers[self._ti])
            self._ti += 1
            if t < self._resume:
                continue  # inside an excursion, or the untriggered return round
            depth_u = mix_float(seed, client_id, t, 7)
            depth = 1 + int(depth_u * depth_u * (self.n_candidates - 1))
            depth = min(depth, self.n_candidates - 1)
            duration_u = mix_float(seed, client_id, t, 11)
            duration = 1 + int(duration_u * 3.0)
            if t > self._cursor:
                self._buffer.append((self._cursor, t, 0))
            end = min(t + duration, n_rounds)
            self._buffer.append((t, end, depth))
            self._cursor = end
            self._resume = t + duration + 1
            if self._cursor >= n_rounds:
                self._done = True

    def take(self, lo: int, hi: int) -> List[Epoch]:
        """Epochs overlapping ``[lo, hi)``, true bounds preserved.

        Ranges must ascend: ``lo`` may not precede a previously consumed
        ``hi`` (epochs wholly before it have been discarded).  The first
        call may start anywhere — a resumed campaign walks the cached
        triggers up to ``lo`` once, in O(#triggers)."""
        if not 0 <= lo < hi <= self.n_rounds:
            raise ValueError(
                f"round range [{lo}, {hi}) outside campaign [0, {self.n_rounds})"
            )
        if lo < self._consumed_to:
            raise ValueError(
                f"epoch stream already consumed through round "
                f"{self._consumed_to}; cannot rewind to {lo}"
            )
        self._fill(hi)
        out = [e for e in self._buffer if e[1] > lo and e[0] < hi]
        self._buffer = [e for e in self._buffer if e[1] > hi]
        self._consumed_to = hi
        return out


def epoch_change_count(epochs: List[Epoch]) -> int:
    """Consecutive-round route changes implied by an epoch list.

    Adjacent epochs always carry different candidate indices (an
    excursion departs from and returns to index 0), and candidate lists
    are site-deduplicated, so each boundary is exactly one observed
    catchment change.
    """
    return max(0, len(epochs) - 1)
