"""Transit providers with per-address-family policies.

The paper repeatedly traces IPv4/IPv6 RTT differences to two ASes:

* **AS6939** (Hurricane Electric-like, here ``OPEN_V6_TRANSIT``): an open
  IPv6 peering policy makes it carry a large share of IPv6 paths; in
  North America that *lowers* latency (i.root: 46.2 ms v6 vs 62.6 ms v4),
  while in Africa/South America it hauls traffic to remote replicas and
  *raises* it (l.root Africa via AS6939: ~62.5 ms; i.root South America
  +100 % on v6).
* **AS12956** (Telxius-like, ``SA_V4_TRANSIT``): dominates South American
  IPv4 paths toward North America.

A provider's ``pops`` are the cities where it can hand traffic off; the
haul from a client's entry PoP to the PoP nearest the chosen anycast site
is what creates out-of-continent detours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.geo.cities import City, city
from repro.geo.continents import Continent
from repro.geo.coords import haversine_km


#: (asn, origin IATA) -> nearest PoP; providers and cities are static.
_NEAREST_POP_CACHE: Dict[Tuple[int, str], City] = {}


@dataclass(frozen=True)
class TransitProvider:
    """One transit AS."""

    asn: int
    name: str
    pops: Tuple[City, ...]
    #: Relative likelihood of being picked as upstream, per family.
    openness_v4: float
    openness_v6: float
    #: Floor on the proximity factor in upstream choice: providers with
    #: open/cheap peering attract customers far from their PoPs (how the
    #: AS6939-like network ends up carrying South American and African
    #: IPv6 despite having no PoPs there — paper §6).
    remote_appeal: float = 0.0
    #: Added queueing latency (ms) on paths through this provider, per
    #: family.  The paper measured the AS6939-like network at 221.4 ms
    #: average on IPv4 but 23.4 ms on IPv6 in North America — congested
    #: v4 ports, clean v6 — which is what flips i.root's NA family ratio.
    congestion_ms_v4: float = 0.0
    congestion_ms_v6: float = 0.0

    def congestion_ms(self, family: int) -> float:
        if family == 4:
            return self.congestion_ms_v4
        if family == 6:
            return self.congestion_ms_v6
        raise ValueError(f"family must be 4 or 6, got {family}")

    def nearest_pop(self, origin: City) -> City:
        """The provider PoP closest to *origin* — the client's entry point.

        Memoised per (provider, origin city): route construction asks this
        for every candidate site of every letter.
        """
        cached = _NEAREST_POP_CACHE.get((self.asn, origin.iata))
        if cached is None:
            cached = min(
                self.pops, key=lambda p: haversine_km(origin.location, p.location)
            )
            _NEAREST_POP_CACHE[(self.asn, origin.iata)] = cached
        return cached

    def pop_distance_km(self, origin: City) -> float:
        """Distance from *origin* to the nearest PoP."""
        return haversine_km(origin.location, self.nearest_pop(origin).location)

    def openness(self, family: int) -> float:
        if family == 4:
            return self.openness_v4
        if family == 6:
            return self.openness_v6
        raise ValueError(f"family must be 4 or 6, got {family}")


def _cities(*iatas: str) -> Tuple[City, ...]:
    return tuple(city(i) for i in iatas)


#: AS6939-like: PoPs concentrated in NA/EU (plus a handful in Asia), open
#: IPv6 peering.  Its *absence* of PoPs in Africa/South America is what
#: drags v6 traffic from those regions out of continent.
OPEN_V6_TRANSIT = TransitProvider(
    asn=6939,
    name="OpenPeer6 (AS6939-like)",
    pops=_cities(
        "SJC", "LAX", "SEA", "ORD", "DFW", "MIA", "JFK", "IAD", "YYZ",
        "FRA", "AMS", "LHR", "CDG", "ARN", "ZRH",
        "NRT", "HKG", "SIN",
    ),
    openness_v4=0.25,
    openness_v6=0.90,
    remote_appeal=0.6,
    congestion_ms_v4=60.0,
    congestion_ms_v6=0.0,
)

#: AS12956-like: the South-America <-> North-America IPv4 workhorse.
SA_V4_TRANSIT = TransitProvider(
    asn=12956,
    name="AtlanticCarrier (AS12956-like)",
    pops=_cities("MAD", "LIS", "MIA", "GRU", "EZE", "SCL", "BOG", "LIM"),
    openness_v4=0.80,
    openness_v6=0.35,
)

TRANSIT_CATALOG: List[TransitProvider] = [
    OPEN_V6_TRANSIT,
    SA_V4_TRANSIT,
    TransitProvider(
        asn=3356, name="GlobalTier1-A",
        pops=_cities(
            "IAD", "JFK", "ORD", "DFW", "LAX", "SEA", "MIA", "DEN",
            "FRA", "AMS", "LHR", "CDG", "MXP", "MAD",
            "NRT", "HKG", "SIN", "SYD", "GRU", "EZE", "JNB",
        ),
        openness_v4=0.85, openness_v6=0.70,
    ),
    TransitProvider(
        asn=1299, name="GlobalTier1-B",
        pops=_cities(
            "ARN", "OSL", "CPH", "HEL", "FRA", "AMS", "LHR", "CDG", "WAW",
            "JFK", "IAD", "ORD", "LAX", "MIA",
            "HKG", "SIN", "NRT",
        ),
        openness_v4=0.80, openness_v6=0.75,
    ),
    TransitProvider(
        asn=174, name="BudgetTransit",
        pops=_cities(
            "IAD", "JFK", "ORD", "LAX", "DFW",
            "FRA", "AMS", "LHR", "CDG", "MAD", "MXP", "WAW",
        ),
        openness_v4=0.70, openness_v6=0.50,
        congestion_ms_v4=18.0, congestion_ms_v6=18.0,
    ),
    TransitProvider(
        asn=2914, name="PacificTier1",
        pops=_cities(
            "NRT", "KIX", "HKG", "SIN", "ICN", "TPE", "SYD",
            "SJC", "LAX", "SEA", "IAD", "FRA", "LHR", "AMS",
        ),
        openness_v4=0.65, openness_v6=0.65,
    ),
    TransitProvider(
        asn=5511, name="EuroAfricaCarrier",
        pops=_cities(
            "CDG", "MRS", "FRA", "LHR", "MAD", "LIS",
            "CMN", "DKR", "ABJ", "LOS", "JNB", "NBO", "CAI",
        ),
        openness_v4=0.55, openness_v6=0.40,
    ),
    TransitProvider(
        asn=6453, name="IndiaAtlanticCarrier",
        pops=_cities(
            "BOM", "DEL", "MAA", "SIN", "HKG", "DXB",
            "LHR", "FRA", "CDG", "JFK", "IAD", "MIA",
        ),
        openness_v4=0.60, openness_v6=0.45,
    ),
    TransitProvider(
        asn=4637, name="AsiaPacTransit",
        pops=_cities(
            "HKG", "SIN", "NRT", "SYD", "AKL", "CGK", "KUL", "BKK", "MNL",
            "LAX", "SJC", "LHR",
        ),
        openness_v4=0.55, openness_v6=0.50,
    ),
    TransitProvider(
        asn=37100, name="AfricaRegional",
        pops=_cities("JNB", "CPT", "NBO", "LOS", "ACC", "DAR", "CAI", "MRS", "LHR"),
        openness_v4=0.50, openness_v6=0.35,
    ),
    TransitProvider(
        asn=61832, name="BrazilRegional",
        pops=_cities("GRU", "GIG", "POA", "FOR", "BSB", "MIA"),
        openness_v4=0.55, openness_v6=0.45,
    ),
    TransitProvider(
        asn=4826, name="OceaniaTransit",
        pops=_cities("SYD", "MEL", "BNE", "PER", "AKL", "SIN", "LAX", "SJC"),
        openness_v4=0.50, openness_v6=0.50,
    ),
]

TRANSIT_BY_ASN: Dict[int, TransitProvider] = {t.asn: t for t in TRANSIT_CATALOG}
