"""The assembled routing fabric.

Owns the facility inventory, assigns every root server site to a
facility (the co-location ground truth), scopes local sites (IXP-scoped
vs country-scoped), and hands out :class:`RouteSelector` instances.

An AS-level :mod:`networkx` graph of the fabric is exposed for
introspection and the ablation benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.geo.cities import City
from repro.netsim.attachment import Attachment
from repro.netsim.churn import ChurnModel
from repro.netsim.facilities import Facility, Ixp, IXP_CATALOG, build_facilities
from repro.netsim.routing import LETTER_ASN, RouteSelector
from repro.netsim.transit import TRANSIT_CATALOG
from repro.rss.sites import Site, SiteCatalog
from repro.util.rng import RngFactory

#: Probability that a *global* site in an IXP city sits in the IXP
#: facility (vs a private PoP).  Exchanges are where the paper finds
#: co-location concentrating (§5) — but most global sites still live in
#: private PoPs, keeping average reduced redundancy near the paper's ~1.
GLOBAL_SITE_IXP_SHARE = 0.3

#: Same, for local sites announced at the exchange.
LOCAL_SITE_IXP_SHARE = 0.4


class NetworkFabric:
    """Facilities + site placement + local-site scoping + selectors."""

    def __init__(self, catalog: SiteCatalog, rng_factory: RngFactory) -> None:
        self.catalog = catalog
        self.facilities: Dict[str, Facility] = build_facilities()
        self._ixp_facility: Dict[str, Facility] = {}
        for facility in self.facilities.values():
            if facility.ixp is not None:
                self._ixp_facility[facility.ixp.ixp_id] = facility
        ixp_city_to_facility = {
            f.city.iata: f for f in self.facilities.values() if f.ixp is not None
        }

        rng = rng_factory.stream("fabric.site-assignment")
        self._site_facility: Dict[str, Facility] = {}
        self._ixp_letter_sites: Dict[Tuple[str, str], List[Site]] = {}
        self._country_local: Dict[Tuple[str, str], List[Site]] = {}
        self._global_sites: Dict[str, List[Site]] = {}

        for site in catalog.sites:
            ixp_facility = ixp_city_to_facility.get(site.city.iata)
            iata = site.city.iata.lower()
            private = self.facilities[f"{iata}-dc{rng.choice((1, 2, 3, 4, 5, 6))}"]
            # Housing (which facility, i.e. which edge router) is decided
            # separately from announcement scope: a site can be announced
            # at the local exchange while sitting in a private DC across
            # town (remote peering into the fabric).
            in_ixp_facility = (
                ixp_facility is not None
                and rng.random()
                < (GLOBAL_SITE_IXP_SHARE if site.is_global else LOCAL_SITE_IXP_SHARE)
            )
            facility = ixp_facility if in_ixp_facility else private
            if site.is_global:
                self._global_sites.setdefault(site.letter, []).append(site)
                if ixp_facility is not None:
                    # Global sites in exchange cities also announce there.
                    self._ixp_letter_sites.setdefault(
                        (ixp_facility.ixp.ixp_id, site.letter), []
                    ).append(site)
            else:
                if ixp_facility is not None:
                    # IXP-scoped local site: visible to exchange members.
                    self._ixp_letter_sites.setdefault(
                        (ixp_facility.ixp.ixp_id, site.letter), []
                    ).append(site)
                else:
                    # Country-scoped local site (ISP-hosted).
                    self._country_local.setdefault(
                        (site.city.country, site.letter), []
                    ).append(site)
            self._site_facility[site.key] = facility

        for sites in self._global_sites.values():
            sites.sort(key=lambda s: s.key)

    # -- lookups -------------------------------------------------------------------

    def facility_of(self, site: Site) -> Facility:
        """The facility hosting *site*."""
        return self._site_facility[site.key]

    def sites_at_ixp(self, ixp_id: str, letter: str) -> List[Site]:
        """Sites of *letter* present at exchange *ixp_id*."""
        return list(self._ixp_letter_sites.get((ixp_id, letter), []))

    def letters_at_ixp(self, ixp_id: str) -> List[str]:
        """Which letters are present at an exchange (co-location census)."""
        return sorted(
            {letter for (ixp, letter) in self._ixp_letter_sites if ixp == ixp_id}
        )

    def country_local_sites(self, country: str, letter: str) -> List[Site]:
        """Country-scoped local sites of *letter* visible in *country*."""
        return list(self._country_local.get((country, letter), []))

    def global_sites(self, letter: str) -> List[Site]:
        """All global sites of *letter* (every client can reach these)."""
        return list(self._global_sites.get(letter, []))

    def ixp_facility(self, ixp_id: str) -> Facility:
        """The facility carrying an exchange's fabric."""
        if ixp_id not in self._ixp_facility:
            raise KeyError(f"unknown IXP: {ixp_id!r}")
        return self._ixp_facility[ixp_id]

    # -- selectors -------------------------------------------------------------------

    def selector(self, seed: int, expected_rounds: int) -> RouteSelector:
        """A route selector with a fresh churn model."""
        return RouteSelector(self, ChurnModel(seed, expected_rounds))

    # -- introspection ------------------------------------------------------------------

    def as_graph(self, attachments: Optional[List[Attachment]] = None) -> nx.Graph:
        """AS-level graph: transit ASes, letter origin ASes, IXPs as
        pseudo-nodes, and (optionally) client attachments."""
        graph = nx.Graph()
        for transit in TRANSIT_CATALOG:
            graph.add_node(f"AS{transit.asn}", kind="transit", name=transit.name)
        for letter, asn in LETTER_ASN.items():
            graph.add_node(f"AS{asn}", kind="root", letter=letter)
        for ixp in IXP_CATALOG:
            graph.add_node(ixp.ixp_id, kind="ixp", city=ixp.city.iata)
            for letter in self.letters_at_ixp(ixp.ixp_id):
                graph.add_edge(ixp.ixp_id, f"AS{LETTER_ASN[letter]}", kind="peering")
        for transit in TRANSIT_CATALOG:
            for letter, asn in LETTER_ASN.items():
                graph.add_edge(f"AS{transit.asn}", f"AS{asn}", kind="transit")
        for att in attachments or []:
            node = f"AS{att.asn}"
            graph.add_node(node, kind="edge", city=att.city.iata)
            for family in (4, 6):
                for transit in att.transits(family):
                    graph.add_edge(node, f"AS{transit.asn}", kind="transit")
                for ixp_id in att.ixp_memberships(family):
                    graph.add_edge(node, ixp_id, kind="peering")
        return graph

    def colocation_census(self) -> Dict[str, int]:
        """facility_id -> number of distinct letters hosted (ground truth
        for the RQ1 analyses)."""
        count: Dict[str, set] = {}
        for site in self.catalog.sites:
            facility = self.facility_of(site)
            count.setdefault(facility.facility_id, set()).add(site.letter)
        return {fid: len(letters) for fid, letters in count.items()}
