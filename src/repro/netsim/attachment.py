"""How an edge network (vantage point or client population) attaches to
the routing fabric: its AS, home city, per-family upstream transit
providers and IXP memberships.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.geo.cities import City
from repro.geo.continents import Continent
from repro.netsim.transit import TransitProvider


@dataclass(frozen=True)
class Attachment:
    """One edge network's view of the Internet.

    ``transits`` are ordered by local preference (first = most preferred).
    IPv4 and IPv6 connectivity commonly differ (different upstreams,
    different peering reach) — the root cause of most of the paper's
    v4-vs-v6 findings — so both are carried explicitly.
    """

    asn: int
    city: City
    transits_v4: Tuple[TransitProvider, ...]
    transits_v6: Tuple[TransitProvider, ...]
    ixp_memberships_v4: Tuple[str, ...] = ()
    ixp_memberships_v6: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.transits_v4 or not self.transits_v6:
            raise ValueError("attachment needs at least one transit per family")

    @property
    def continent(self) -> Continent:
        return self.city.continent

    def transits(self, family: int) -> Tuple[TransitProvider, ...]:
        if family == 4:
            return self.transits_v4
        if family == 6:
            return self.transits_v6
        raise ValueError(f"family must be 4 or 6, got {family}")

    def ixp_memberships(self, family: int) -> Tuple[str, ...]:
        if family == 4:
            return self.ixp_memberships_v4
        if family == 6:
            return self.ixp_memberships_v6
        raise ValueError(f"family must be 4 or 6, got {family}")

    def has_ipv6(self) -> bool:
        """Whether the network has IPv6 connectivity at all."""
        return bool(self.transits_v6)
