"""Anycast route selection.

For a client attachment and a root service address, build the candidate
route set (peering routes via IXP memberships, country-scoped local
sites, transit routes via each upstream), rank it BGP-style (peering
beats transit — local preference; then upstream preference order; then
shortest path), and let the churn model pick the active candidate per
measurement round.

Candidate sets are static per (attachment, letter, family) and heavily
cached; only the churn index varies over time.  This keeps the cost of a
simulated request at well under a microsecond after warm-up, which is
what makes multi-month campaigns with hundreds of vantage points
tractable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.geo.cities import City
from repro.geo.coords import haversine_km
from repro.netsim.attachment import Attachment
from repro.netsim.churn import ChurnModel
from repro.netsim.facilities import Facility
from repro.netsim.mix import mix_float, mix_str
from repro.netsim.transit import TransitProvider
from repro.rss.sites import Site

if TYPE_CHECKING:
    from repro.netsim.topology import NetworkFabric

#: Synthetic origin AS per letter (purely for AS-path rendering).
LETTER_ASN: Dict[str, int] = {
    letter: 64500 + i for i, letter in enumerate("abcdefghijklm")
}

#: Haul legs longer than this add a visible backbone hop to traceroutes.
HAUL_HOP_THRESHOLD_KM = 2500.0

#: Probability an edge network actually imports-and-prefers a peer route
#: it hears at an exchange.  Real operators filter and de-preference
#: exchange routes selectively (paper §8 points at "the way operators
#: import routes" as a driver of the observed diversity); without this,
#: every member would reach every co-located letter over the same fabric
#: and reduced redundancy would saturate.
PEER_IMPORT_PROB = 0.45


@dataclass(frozen=True)
class Route:
    """One resolved path from a client to an anycast site."""

    site: Site
    facility: Facility
    via: str  # "peer" (exchange), "local" (direct/ISP-hosted) or "transit"
    transit: Optional[TransitProvider]
    entry_city: City
    path_km: float  # geographic length of the routed path (one way)
    direct_km: float  # great-circle client -> site distance
    hop_count: int
    as_path: Tuple[int, ...]
    stable_key: int  # deterministic per-route key for jitter hashing
    extra_ms: float = 0.0  # provider congestion on this path

    @property
    def second_to_last_hop(self) -> str:
        """The facility edge router — the RQ1 co-location signal."""
        return self.facility.edge_router


class RouteSelector:
    """Builds, ranks, caches and churns candidate routes."""

    def __init__(self, fabric: "NetworkFabric", churn: ChurnModel) -> None:
        self.fabric = fabric
        self.churn = churn
        self._candidate_cache: Dict[Tuple[int, str, str, int], List[Route]] = {}
        self._transit_site_cache: Dict[Tuple[int, str, str], List[Tuple[float, Site]]] = {}
        # (asn, letter) -> per-site (site, hub, tail_km, diversity_km):
        # everything in the ranking that does not depend on the entry PoP.
        self._transit_geometry_cache: Dict[
            Tuple[int, str], List[Tuple[Site, City, float, float]]
        ] = {}

    # -- candidate construction ---------------------------------------------------

    def _peer_routes(self, att: Attachment, letter: str, family: int) -> List[Route]:
        routes: List[Route] = []
        for ixp_id in att.ixp_memberships(family):
            for site in self.fabric.sites_at_ixp(ixp_id, letter):
                facility = self.fabric.facility_of(site)
                entry = facility.city
                path_km = haversine_km(att.city.location, entry.location)
                routes.append(
                    Route(
                        site=site,
                        facility=facility,
                        via="peer",
                        transit=None,
                        entry_city=entry,
                        path_km=path_km,
                        direct_km=haversine_km(att.city.location, site.city.location),
                        hop_count=4,
                        as_path=(att.asn, LETTER_ASN[letter]),
                        stable_key=mix_str(f"{att.asn}|{site.key}|peer|{family}"),
                    )
                )
        # Country-scoped local sites (ISP-hosted, d.root style) are a
        # direct adjacency, not an exchange route — never import-filtered.
        for site in self.fabric.country_local_sites(att.city.country, letter):
            facility = self.fabric.facility_of(site)
            path_km = haversine_km(att.city.location, site.city.location)
            routes.append(
                Route(
                    site=site,
                    facility=facility,
                    via="local",
                    transit=None,
                    entry_city=site.city,
                    path_km=path_km,
                    direct_km=path_km,
                    hop_count=4,
                    as_path=(att.asn, LETTER_ASN[letter]),
                    stable_key=mix_str(f"{att.asn}|{site.key}|local|{family}"),
                )
            )
        return routes

    def _transit_site_ranking(
        self, transit: TransitProvider, entry: City, letter: str
    ) -> List[Tuple[float, Site]]:
        """Global sites of *letter* ranked by haul cost from *entry* over
        *transit*'s backbone (hot-potato-ish: entry -> nearest hub to the
        site -> site)."""
        key = (transit.asn, entry.iata, letter)
        if key not in self._transit_site_cache:
            geom_key = (transit.asn, letter)
            geometry = self._transit_geometry_cache.get(geom_key)
            if geometry is None:
                geometry = []
                for site in self.fabric.global_sites(letter):
                    hub = transit.nearest_pop(site.city)
                    tail = haversine_km(hub.location, site.city.location)
                    # Interconnection diversity: each (provider, site) pair
                    # has its own peering/backhaul cost, so different
                    # letters exit a provider's backbone at different
                    # places rather than all converging on one hub.
                    diversity = 1600.0 * mix_float(transit.asn, mix_str(site.key), 5)
                    geometry.append((site, hub, tail, diversity))
                self._transit_geometry_cache[geom_key] = geometry
            hauls: Dict[str, float] = {}
            ranked: List[Tuple[float, Site]] = []
            for site, hub, tail, diversity in geometry:
                haul = hauls.get(hub.iata)
                if haul is None:
                    haul = haversine_km(entry.location, hub.location)
                    hauls[hub.iata] = haul
                ranked.append((haul + tail + diversity, site))
            ranked.sort(key=lambda pair: (pair[0], pair[1].key))
            self._transit_site_cache[key] = ranked
        return self._transit_site_cache[key]

    def _transit_routes(self, att: Attachment, letter: str, family: int) -> List[Route]:
        routes: List[Route] = []
        for transit in att.transits(family):
            entry = transit.nearest_pop(att.city)
            access_km = haversine_km(att.city.location, entry.location)
            ranked = self._transit_site_ranking(transit, entry, letter)
            for haul_km, site in ranked[:2]:  # best exit + one alternate
                facility = self.fabric.facility_of(site)
                hub = transit.nearest_pop(site.city)
                long_haul = haversine_km(entry.location, hub.location) > HAUL_HOP_THRESHOLD_KM
                routes.append(
                    Route(
                        site=site,
                        facility=facility,
                        via="transit",
                        transit=transit,
                        entry_city=entry,
                        path_km=access_km + haul_km,
                        direct_km=haversine_km(att.city.location, site.city.location),
                        hop_count=6 if long_haul else 5,
                        as_path=(att.asn, transit.asn, LETTER_ASN[letter]),
                        stable_key=mix_str(
                            f"{att.asn}|{site.key}|as{transit.asn}|{family}"
                        ),
                        extra_ms=transit.congestion_ms(family),
                    )
                )
        return routes

    def candidates(self, att: Attachment, letter: str, family: int) -> List[Route]:
        """Ranked candidate routes (best first) for one catchment decision."""
        cache_key = (att.asn, att.city.iata, letter, family)
        if cache_key not in self._candidate_cache:
            peers = self._peer_routes(att, letter, family)
            peers.sort(key=lambda r: (r.path_km, r.site.key))
            imported = [
                r
                for r in peers
                if r.via == "local"
                or mix_float(att.asn, mix_str(r.site.key), family, 3) < PEER_IMPORT_PROB
            ]
            demoted = [r for r in peers if r not in imported]
            transits = self._transit_routes(att, letter, family)
            pref = {t.asn: i for i, t in enumerate(att.transits(family))}
            transits.sort(
                key=lambda r: (pref[r.transit.asn], r.path_km, r.site.key)
            )
            merged = imported + transits + demoted
            if not merged:
                raise RuntimeError(
                    f"no route from AS{att.asn} to {letter}.root (family {family})"
                )
            # Deduplicate by site, keeping the best-ranked occurrence.
            seen = set()
            unique: List[Route] = []
            for route in merged:
                if route.site.key not in seen:
                    seen.add(route.site.key)
                    unique.append(route)
            self._candidate_cache[cache_key] = unique
        return self._candidate_cache[cache_key]

    # -- per-round selection -------------------------------------------------------

    def select(
        self,
        att: Attachment,
        client_id: int,
        letter: str,
        family: int,
        address: str,
        round_no: int,
    ) -> Route:
        """The route (client, address) uses in measurement *round_no*."""
        options = self.candidates(att, letter, family)
        index = self.churn.select_index(
            client_id, address, letter, family, round_no, len(options)
        )
        return options[index]

    def best(self, att: Attachment, letter: str, family: int) -> Route:
        """The steady-state (no-churn) route."""
        return self.candidates(att, letter, family)[0]

    def best_excluding(
        self,
        att: Attachment,
        letter: str,
        family: int,
        failed_facilities: frozenset,
    ) -> Optional[Route]:
        """The best route avoiding sites in failed facilities.

        Models the §5 failure scenario: when a facility goes dark, its
        anycast announcements are withdrawn and traffic instantaneously
        shifts to the next-best catchment.  Returns None when no route
        survives (never happens for letters with >1 facility).
        """
        for route in self.candidates(att, letter, family):
            if route.facility.facility_id not in failed_facilities:
                return route
        return None
