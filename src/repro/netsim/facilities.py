"""IXPs and colocation facilities.

Root server instances live in facilities; a facility's edge router is the
*second-to-last traceroute hop* for every instance inside it.  Letters
deploying in the same facility therefore share last-hop infrastructure —
exactly the "reduced redundancy" the paper's RQ1 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geo.cities import City, city
from repro.geo.continents import Continent


@dataclass(frozen=True)
class Ixp:
    """An Internet exchange point."""

    ixp_id: str
    name: str
    city: City
    size: int  # rough member count class: 3 = major, 2 = large, 1 = regional

    @property
    def continent(self) -> Continent:
        return self.city.continent


def _ixp(ixp_id: str, name: str, iata: str, size: int) -> Ixp:
    return Ixp(ixp_id=ixp_id, name=name, city=city(iata), size=size)


#: Major exchanges; EU/NA entries double as the paper's 14 passive
#: IXP vantage points (IXP-DNS-1).
IXP_CATALOG: List[Ixp] = [
    _ixp("decix-fra", "DE-CIX Frankfurt", "FRA", 3),
    _ixp("amsix", "AMS-IX", "AMS", 3),
    _ixp("linx", "LINX London", "LHR", 3),
    _ixp("franceix", "France-IX Paris", "CDG", 2),
    _ixp("netnod-sto", "Netnod Stockholm", "ARN", 2),
    _ixp("vix", "VIX Vienna", "VIE", 1),
    _ixp("mix-mil", "MIX Milan", "MXP", 1),
    _ixp("espanix", "ESPANIX Madrid", "MAD", 1),
    _ixp("decix-nyc", "DE-CIX New York", "JFK", 2),
    _ixp("equinix-ash", "Equinix Ashburn", "IAD", 3),
    _ixp("equinix-chi", "Equinix Chicago", "ORD", 2),
    _ixp("any2-lax", "Any2 Los Angeles", "LAX", 2),
    _ixp("six-sea", "SIX Seattle", "SEA", 2),
    _ixp("torix", "TorIX Toronto", "YYZ", 1),
    _ixp("ixbr-sp", "IX.br Sao Paulo", "GRU", 3),
    _ixp("cabase-bue", "CABASE Buenos Aires", "EZE", 1),
    _ixp("jpnap", "JPNAP Tokyo", "NRT", 2),
    _ixp("hkix", "HKIX Hong Kong", "HKG", 2),
    _ixp("sgix", "SGIX Singapore", "SIN", 2),
    _ixp("napafrica", "NAPAfrica Johannesburg", "JNB", 2),
    _ixp("kixp", "KIXP Nairobi", "NBO", 1),
    _ixp("ixau-syd", "IX Australia Sydney", "SYD", 1),
]

#: The 14 EU/NA IXPs used as passive vantage points in the paper.
PASSIVE_IXP_IDS: List[str] = [
    "decix-fra", "amsix", "linx", "franceix", "netnod-sto", "vix",
    "mix-mil", "espanix",
    "decix-nyc", "equinix-ash", "equinix-chi", "any2-lax", "six-sea", "torix",
]


@dataclass(frozen=True)
class Facility:
    """A colocation facility; the unit of shared last-hop infrastructure."""

    facility_id: str
    city: City
    ixp: Optional[Ixp]  # None = private PoP without exchange fabric

    @property
    def edge_router(self) -> str:
        """Identifier appearing as the second-to-last traceroute hop."""
        return f"edge.{self.facility_id}"

    @property
    def continent(self) -> Continent:
        return self.city.continent


def build_facilities() -> Dict[str, Facility]:
    """Facilities: one per IXP plus one IXP-less facility per IXP city
    and per other catalog city hosting infrastructure.

    Returned keyed by ``facility_id``.  Site assignment happens in
    :class:`repro.netsim.topology.NetworkFabric`.
    """
    from repro.geo.cities import CITY_CATALOG

    facilities: Dict[str, Facility] = {}
    for ixp in IXP_CATALOG:
        fid = f"{ixp.city.iata.lower()}-ix"
        facilities[fid] = Facility(facility_id=fid, city=ixp.city, ixp=ixp)
    # Several private facilities per city: sites in the same metro do
    # not automatically share an edge router (operators use various DCs).
    for iata, c in CITY_CATALOG.items():
        for n in (1, 2, 3, 4, 5, 6):
            fid = f"{iata.lower()}-dc{n}"
            facilities[fid] = Facility(facility_id=fid, city=c, ixp=None)
    return facilities


def ixp_by_id(ixp_id: str) -> Ixp:
    """Look up an IXP from the catalog."""
    for ixp in IXP_CATALOG:
        if ixp.ixp_id == ixp_id:
            return ixp
    raise KeyError(f"unknown IXP: {ixp_id!r}")
