"""Fast deterministic hashing to pseudo-random floats.

The simulator needs per-request randomness (jitter, hop loss) for tens of
millions of requests; seeding :class:`random.Random` per request would
dominate runtime.  A splitmix64-style integer mixer gives deterministic,
well-distributed values at a few ns each.

The epoch-compiled campaign engine evaluates the same mixer over whole
round ranges at once: :func:`mix64_prefix` absorbs the fixed leading
values into a partial state, and :func:`mix64_array` /
:func:`mix_float_array` finish the chain over a numpy array of trailing
values.  The array forms are bit-identical to calling :func:`mix64` /
:func:`mix_float` element-wise (uint64 wrap-around multiplication is the
same operation in numpy), which is what keeps the vectorized engine's
output byte-identical to the scalar prober.
"""

from __future__ import annotations

import numpy as np

_MASK = (1 << 64) - 1

_INIT = 0x9E3779B97F4A7C15
_MUL1 = 0xBF58476D1CE4E5B9
_MUL2 = 0x94D049BB133111EB


def mix64(*values: int) -> int:
    """Mix integers into one 64-bit hash (splitmix64 finalizer chain)."""
    h = 0x9E3779B97F4A7C15
    for v in values:
        h = (h ^ (v & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK
        h = h ^ (h >> 31)
    return h


def mix_float(*values: int) -> float:
    """Deterministic float in [0, 1) from the mixed hash."""
    return mix64(*values) / float(1 << 64)


def mix64_prefix(*values: int) -> int:
    """Partial mixer state after absorbing *values* (see :func:`mix64`).

    Feed the result to :func:`mix64_array` / :func:`mix_float_array` to
    absorb per-round trailing values in bulk.  ``mix64_prefix()`` with no
    arguments is the mixer's initial state.
    """
    h = _INIT
    for v in values:
        h = (h ^ (v & _MASK)) * _MUL1 & _MASK
        h = (h ^ (h >> 27)) * _MUL2 & _MASK
        h = h ^ (h >> 31)
    return h


def mix64_array(prefix, values: "np.ndarray", *suffix: int) -> "np.ndarray":
    """Absorb an array of values (then optional scalar *suffix* values)
    into a :func:`mix64_prefix` state; element-wise equal to
    ``mix64(*prefix_values, v, *suffix)``.

    *prefix* may be a scalar state or an equal-length uint64 array of
    per-element states (each from :func:`mix64_prefix`).
    """
    if isinstance(prefix, np.ndarray):
        h = np.bitwise_xor(
            prefix.astype(np.uint64, copy=False),
            values.astype(np.uint64, copy=False),
        )
    else:
        h = np.bitwise_xor(np.uint64(prefix), values.astype(np.uint64, copy=False))
    # uint64 wrap-around *is* the mixer; numpy only warns about it for
    # 0-d operands (the scalar golden-reference paths), never arrays.
    with np.errstate(over="ignore"):
        h = h * np.uint64(_MUL1)
        h = (h ^ (h >> np.uint64(27))) * np.uint64(_MUL2)
        h = h ^ (h >> np.uint64(31))
        for v in suffix:
            h = (h ^ np.uint64(v & _MASK)) * np.uint64(_MUL1)
            h = (h ^ (h >> np.uint64(27))) * np.uint64(_MUL2)
            h = h ^ (h >> np.uint64(31))
    return h


def mix_float_array(prefix: int, values: "np.ndarray", *suffix: int) -> "np.ndarray":
    """Array form of :func:`mix_float`; bit-identical element-wise."""
    return mix64_array(prefix, values, *suffix) / float(1 << 64)


def mix_str(*parts: str) -> int:
    """Mix strings by hashing their UTF-8 bytes (stable across runs).

    Parts are domain-separated so ``("a", "b")`` and ``("ab",)`` differ.
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in part.encode("utf-8"):
            acc = ((acc ^ byte) * 0x100000001B3) & _MASK
        acc = ((acc ^ 0x1F) * 0x100000001B3) & _MASK  # part separator
    return mix64(acc)
