"""Fast deterministic hashing to pseudo-random floats.

The simulator needs per-request randomness (jitter, hop loss) for tens of
millions of requests; seeding :class:`random.Random` per request would
dominate runtime.  A splitmix64-style integer mixer gives deterministic,
well-distributed values at a few ns each.
"""

from __future__ import annotations

_MASK = (1 << 64) - 1


def mix64(*values: int) -> int:
    """Mix integers into one 64-bit hash (splitmix64 finalizer chain)."""
    h = 0x9E3779B97F4A7C15
    for v in values:
        h = (h ^ (v & _MASK)) * 0xBF58476D1CE4E5B9 & _MASK
        h = (h ^ (h >> 27)) * 0x94D049BB133111EB & _MASK
        h = h ^ (h >> 31)
    return h


def mix_float(*values: int) -> float:
    """Deterministic float in [0, 1) from the mixed hash."""
    return mix64(*values) / float(1 << 64)


def mix_str(*parts: str) -> int:
    """Mix strings by hashing their UTF-8 bytes (stable across runs).

    Parts are domain-separated so ``("a", "b")`` and ``("ab",)`` differ.
    """
    acc = 0xCBF29CE484222325
    for part in parts:
        for byte in part.encode("utf-8"):
            acc = ((acc ^ byte) * 0x100000001B3) & _MASK
        acc = ((acc ^ 0x1F) * 0x100000001B3) & _MASK  # part separator
    return mix64(acc)
