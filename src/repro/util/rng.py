"""Deterministic named random-number streams.

Every stochastic component of the simulation draws from a stream derived
from ``(study_seed, stream_name)``.  This guarantees that adding a new
consumer of randomness never perturbs the draws seen by existing consumers,
so results stay reproducible across code changes that only *add* features.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


def derive_seed(base_seed: int, name: str) -> int:
    """Derive a child seed from a base seed and a stream name.

    The derivation uses SHA-256 so that similar names (``"rtt.a"`` vs
    ``"rtt.b"``) yield statistically independent streams.
    """
    digest = hashlib.sha256(f"{base_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RngFactory:
    """Factory handing out named, independent :class:`random.Random` streams.

    >>> factory = RngFactory(42)
    >>> a = factory.stream("alpha")
    >>> b = factory.stream("beta")
    >>> a is factory.stream("alpha")
    True
    """

    def __init__(self, base_seed: int) -> None:
        if not isinstance(base_seed, int):
            raise TypeError(f"seed must be int, got {type(base_seed).__name__}")
        self.base_seed = base_seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.base_seed, name))
        return self._streams[name]

    def has_stream(self, name: str) -> bool:
        """Whether *name* has been drawn from already (a fresh stream
        is a pure function of ``(base_seed, name)``; a used one is not)."""
        return name in self._streams

    def fork(self, name: str) -> "RngFactory":
        """Return a new factory whose streams are independent of this one."""
        return RngFactory(derive_seed(self.base_seed, f"fork:{name}"))

    def reset(self) -> None:
        """Drop all streams so the next access re-seeds them."""
        self._streams.clear()
