"""Small statistics helpers used by the analysis pipeline.

Only depends on the standard library so it can be unit-tested in isolation;
heavier numerics in the analysis layer use numpy directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100].

    Matches numpy's default ("linear") interpolation so results line up with
    the numpy-based analysis code.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    frac = rank - low
    return float(ordered[low] * (1.0 - frac) + ordered[high] * frac)


def median(values: Sequence[float]) -> float:
    """Median via :func:`percentile`."""
    return percentile(values, 50.0)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    std: float
    minimum: float
    p25: float
    p50: float
    p75: float
    maximum: float


def describe(values: Sequence[float]) -> Summary:
    """Summary statistics of a non-empty sample (population std)."""
    if not values:
        raise ValueError("describe of empty sequence")
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return Summary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=float(min(values)),
        p25=percentile(values, 25.0),
        p50=percentile(values, 50.0),
        p75=percentile(values, 75.0),
        maximum=float(max(values)),
    )


class Ecdf:
    """Empirical CDF over a numeric sample.

    Supports the complementary form used by the paper's Figure 3
    ("1 - proportion of VPs with at most x changes").
    """

    def __init__(self, values: Iterable[float]) -> None:
        self._sorted: List[float] = sorted(values)
        if not self._sorted:
            raise ValueError("Ecdf needs at least one value")

    def __len__(self) -> int:
        return len(self._sorted)

    def cdf(self, x: float) -> float:
        """P(X <= x)."""
        return self._rank(x) / len(self._sorted)

    def ccdf(self, x: float) -> float:
        """P(X > x) — the complementary CDF plotted in Figure 3."""
        return 1.0 - self.cdf(x)

    def quantile(self, q: float) -> float:
        """Inverse CDF for ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        return percentile(self._sorted, q * 100.0)

    def points(self) -> List[Tuple[float, float]]:
        """(x, ccdf(x)) at each distinct sample value, ascending in x."""
        out: List[Tuple[float, float]] = []
        seen = None
        for value in self._sorted:
            if value != seen:
                out.append((value, self.ccdf(value)))
                seen = value
        return out

    def _rank(self, x: float) -> int:
        # bisect_right without importing bisect keeps this file dependency-free
        lo, hi = 0, len(self._sorted)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._sorted[mid] <= x:
                lo = mid + 1
            else:
                hi = mid
        return lo


def histogram(values: Sequence[float], bins: Sequence[float]) -> List[int]:
    """Counts per half-open bin ``[bins[i], bins[i+1])``; last bin closed."""
    if len(bins) < 2:
        raise ValueError("need at least two bin edges")
    counts = [0] * (len(bins) - 1)
    for v in values:
        for i in range(len(bins) - 1):
            last = i == len(bins) - 2
            if bins[i] <= v < bins[i + 1] or (last and v == bins[-1]):
                counts[i] += 1
                break
    return counts


def shares(counts: Dict[str, float]) -> Dict[str, float]:
    """Normalise a mapping of counts to fractions (empty-safe)."""
    total = sum(counts.values())
    if total <= 0:
        return {k: 0.0 for k in counts}
    return {k: v / total for k, v in counts.items()}
