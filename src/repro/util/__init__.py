"""Shared utilities: deterministic RNG streams, simulated time, statistics
helpers and plain-text table/plot rendering.

These modules are deliberately dependency-light; everything else in
:mod:`repro` builds on top of them.
"""

from repro.util.rng import RngFactory, derive_seed
from repro.util.timeutil import SimClock, Timestamp, parse_ts
from repro.util.stats import Ecdf, describe, percentile
from repro.util.tables import Table, render_histogram

__all__ = [
    "RngFactory",
    "derive_seed",
    "SimClock",
    "Timestamp",
    "parse_ts",
    "Ecdf",
    "describe",
    "percentile",
    "Table",
    "render_histogram",
]
