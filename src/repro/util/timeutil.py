"""Simulated time.

The study spans 174 days (2023-07-03 .. 2023-12-24) plus passive-trace
windows in 2024.  We model time as integer Unix seconds (UTC) and provide a
simulation clock that components advance explicitly — no wall-clock reads
anywhere in the library, which keeps every run deterministic.
"""

from __future__ import annotations

import calendar
import time as _time
from dataclasses import dataclass

Timestamp = int  # Unix seconds, UTC

_ISO_FMT = "%Y-%m-%dT%H:%M:%S"
_DAY_FMT = "%Y-%m-%d"


def parse_ts(text: str) -> Timestamp:
    """Parse ``YYYY-MM-DD`` or ``YYYY-MM-DDTHH:MM:SS`` (UTC) to Unix seconds."""
    fmt = _ISO_FMT if "T" in text else _DAY_FMT
    return calendar.timegm(_time.strptime(text, fmt))


def format_ts(ts: Timestamp) -> str:
    """Render Unix seconds as ``YYYY-MM-DDTHH:MM:SS`` (UTC)."""
    return _time.strftime(_ISO_FMT, _time.gmtime(ts))


def format_day(ts: Timestamp) -> str:
    """Render Unix seconds as ``YYYY-MM-DD`` (UTC)."""
    return _time.strftime(_DAY_FMT, _time.gmtime(ts))


def day_of(ts: Timestamp) -> Timestamp:
    """Truncate a timestamp to 00:00:00 of its UTC day."""
    return ts - ts % 86400


MINUTE = 60
HOUR = 3600
DAY = 86400


@dataclass
class SimClock:
    """An explicitly-advanced simulation clock.

    The clock never reads the host's wall clock.  Components that need
    "now" receive the clock (or a timestamp) as an argument.
    """

    now: Timestamp = 0

    def advance(self, seconds: int) -> Timestamp:
        """Move time forward; negative advances are programming errors."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}s")
        self.now += seconds
        return self.now

    def set(self, ts: Timestamp) -> None:
        """Jump to an absolute time (must not move backwards)."""
        if ts < self.now:
            raise ValueError(f"clock may not move backwards ({ts} < {self.now})")
        self.now = ts

    def iso(self) -> str:
        """Current time as an ISO-8601 string."""
        return format_ts(self.now)
