"""Plain-text rendering of tables and simple charts.

The benchmark harness reproduces the paper's tables and figures as text:
tables as aligned columns, figures as labelled data series (plus ASCII
histograms where that aids eyeballing).  Keeping rendering here lets the
analysis layer return pure data structures.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Cell = Union[str, int, float, None]


def series_buckets(series: Dict[str, List[Tuple[int, float]]]) -> List[int]:
    """The sorted union of time buckets across labelled (ts, value) series.

    Shared by every renderer that lays multiple traffic series out on a
    common time axis (Figures 7/9/12/13).
    """
    return sorted({ts for points in series.values() for ts, _value in points})


def _fmt(cell: Cell, float_digits: int) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.{float_digits}f}"
    return str(cell)


class Table:
    """A minimal aligned-column table builder.

    >>> t = Table(["root", "#sites"])
    >>> t.add_row(["a", 56])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], float_digits: int = 1) -> None:
        self.headers = list(headers)
        self.float_digits = float_digits
        self.rows: List[List[str]] = []

    def add_row(self, row: Sequence[Cell]) -> None:
        """Append one row; length must match the header."""
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(self.headers)}"
            )
        self.rows.append([_fmt(c, self.float_digits) for c in row])

    def render(self, title: Optional[str] = None) -> str:
        """Render the table with a separator under the header."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: List[str] = []
        if title:
            lines.append(title)
        header = "  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)


def render_histogram(
    labels: Sequence[str],
    counts: Sequence[float],
    width: int = 40,
    title: Optional[str] = None,
) -> str:
    """Horizontal ASCII bar chart of ``counts`` labelled by ``labels``."""
    if len(labels) != len(counts):
        raise ValueError("labels and counts must have equal length")
    peak = max(counts) if counts else 0
    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = max((len(l) for l in labels), default=0)
    for label, count in zip(labels, counts):
        bar_len = 0 if peak <= 0 else int(round(width * count / peak))
        lines.append(f"{label.ljust(label_w)} | {'#' * bar_len} {count:g}")
    return "\n".join(lines)


def render_series(
    xs: Iterable[float], ys: Iterable[float], name: str, digits: int = 4
) -> str:
    """Render an (x, y) series as one labelled line per point."""
    lines = [name]
    for x, y in zip(xs, ys):
        lines.append(f"  {x:g}\t{y:.{digits}f}")
    return "\n".join(lines)
