"""Pinned multiprocessing context for every process-pool user.

The campaign pipeline, the streaming campaign and the report generator
all fan work over ``ProcessPoolExecutor``.  Relying on the platform's
default start method makes worker behaviour platform-dependent (``fork``
on Linux silently inherits the parent's full mutable state — warmed
caches, module globals, open file descriptors — while macOS and Windows
spawn clean interpreters).  Worker determinism is part of the
byte-identity contract, so every pool in the repo builds its context
here: **forkserver** where available (cheap clean workers forked from a
pristine server process), **spawn** otherwise.  Workers therefore always
start from an empty world/dataset cache and receive their inputs
explicitly — never by fork-time accident.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.context
import os
import threading
import time
from typing import Sequence

#: Accepted start methods, most preferred first.  ``fork`` is deliberately
#: absent: inheriting the parent's mutable state is exactly what pinned
#: contexts exist to prevent.
_PREFERRED = ("forkserver", "spawn")


def mp_context(
    preload: Sequence[str] = (),
) -> multiprocessing.context.BaseContext:
    """The pinned multiprocessing context for process pools.

    *preload* names modules the forkserver imports once before forking
    workers — listing the worker-function module there amortises its
    (numpy-heavy) import cost across every worker instead of paying it
    per process.  Ignored under ``spawn``, which has no server process.
    """
    for method in _PREFERRED:
        if method in multiprocessing.get_all_start_methods():
            ctx = multiprocessing.get_context(method)
            if preload and method == "forkserver":
                ctx.set_forkserver_preload(list(preload))
            return ctx
    # No preferred method available (exotic platform): fall back to the
    # default rather than failing — determinism is then best-effort.
    return multiprocessing.get_context()


def pool_width(requested: int, tasks: int) -> int:
    """Process count for a pool: min(requested, tasks, visible CPUs).

    Oversubscribing a narrow affinity mask buys nothing and costs a lot:
    on a single-CPU container two concurrent shard workers interleave on
    one core and thrash each other's caches — measurably slower than
    running the same tasks through one worker process (which also reuses
    its seed-keyed world cache across tasks).  Capping at the
    affinity-visible CPU count keeps ``--workers N`` a pure upper bound;
    on a real multi-core machine it changes nothing.
    """
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # no sched_getaffinity (macOS)
        cpus = os.cpu_count() or 1
    return max(1, min(requested, tasks, cpus))


def _pid_running(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    try:
        with open(f"/proc/{pid}/stat", "rb") as handle:
            # The state letter follows the parenthesised comm (which may
            # itself contain spaces); "Z" is a zombie — already dead.
            return handle.read().rpartition(b")")[2].split()[0] != b"Z"
    except OSError:  # no /proc (macOS): existence is the best signal
        return True


def exit_when_orphaned(owner_pid: int, poll_seconds: float = 1.0) -> None:
    """Hard-exit this process once *owner_pid* is gone.

    Forkserver pool workers are children of the server daemon, not of
    the pool owner.  If the owner dies without shutting the pool down
    (SIGKILL — the crash-injection tests do exactly this), the workers
    block on the call queue forever, pinning every file descriptor they
    inherited, including the owner's stdout/stderr pipes.  Pool
    initializers call this to watch the owner's pid from a daemon
    thread and exit the moment it disappears.
    """

    def _watch() -> None:
        while True:
            if not _pid_running(owner_pid):
                os._exit(1)
            time.sleep(poll_seconds)

    threading.Thread(target=_watch, name="orphan-watchdog", daemon=True).start()
