"""Generate every table and figure into a directory.

``rootsim-report --out DIR`` runs a campaign, persists its dataset
(passive captures included) under ``DIR/dataset``, and writes one text
file per paper artefact (table1.txt .. fig14.txt, ablation-style extras
included), plus an index.  This is the one-command "regenerate the
paper" path; the benchmarks wrap the same calls with timing and shape
assertions.

Artefact generation is structured as independent **groups**, each a
pure function of the saved dataset directory (the campaign tables plus
the passive tables are all on disk by the time a group runs).  That
makes the fan-out trivial and safe:

* ``--workers N`` dispatches the groups across a process pool, each
  worker memory-mapping the dataset read-only (zero-copy, no pickling
  of results objects);
* serial mode runs the *same* group functions inline against the same
  saved dataset — one code path, so parallel output is byte-identical
  to serial output by construction.

The only artefact that cannot replay from disk is Figure 10: its
line-level diff needs the transferred zone *content*, which datasets
deliberately do not persist.  ``generate_all`` therefore renders it in
the main process from the live results; the dataset-replay path
(``--dataset DIR``) degrades it to the fault descriptions.

Wall-clock per group lands in ``TIMINGS.json`` (not in the index, so
artefact diffs between runs stay meaningful).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Artefacts each group emits.  Groups are the unit of parallel
#: dispatch; every group is independent of every other.
GROUP_ARTEFACTS: Dict[str, Tuple[str, ...]] = {
    "coverage": ("table1", "table4"),
    "audit": ("table2",),
    "stability": ("fig3",),
    "colocation": ("fig4",),
    "distance": ("fig5",),
    "rtt": ("fig6", "fig14"),
    "paths": ("paths_sec6",),
    "bitflip": ("fig10",),
    "isp": ("fig7", "fig8", "fig12"),
    "ixp": ("fig9", "fig13"),
}

#: Registered analyses each group runs — the preflight checks their
#: declared table needs (``registry.tables_for``) against the saved
#: dataset before dispatching anything to a worker.
GROUP_ANALYSES: Dict[str, Tuple[str, ...]] = {
    "coverage": ("coverage",),
    "audit": ("zonemd_audit",),
    "stability": ("stability",),
    "colocation": ("colocation",),
    "distance": ("distance",),
    "rtt": ("rtt",),
    "paths": ("paths",),
    "bitflip": ("zonemd_audit",),
    "isp": ("trafficshift", "clientbehavior"),
    "ixp": ("trafficshift",),
}

#: Passive captures each group replays from the dataset's passive tables.
GROUP_CAPTURES: Dict[str, Tuple[str, ...]] = {
    "isp": ("isp",),
    "ixp": ("ixp-eu", "ixp-na"),
}

#: Per-process dataset cache: a worker handling several groups maps the
#: dataset once and shares the mmap-backed columns between them.
_DATASET_CACHE: Dict[str, Any] = {}


def _load(dataset_dir: str):
    dataset = _DATASET_CACHE.get(dataset_dir)
    if dataset is None:
        from repro.data import load_dataset

        dataset = _DATASET_CACHE[dataset_dir] = load_dataset(dataset_dir)
    return dataset


# --- artefact groups (worker-side; each is dataset dir -> {name: content}) ---------


def _group_coverage(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report

    coverage = registry.run("coverage", dataset)
    return {
        "table1": report.render_table1(coverage),
        "table4": report.render_table4(coverage),
    }


def _group_audit(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report

    audit = registry.run("zonemd_audit", dataset)
    findings, valid = audit.validate_transfers()
    return {"table2": report.render_table2(findings, valid)}


def _group_stability(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report

    stability = registry.run("stability", dataset)
    return {"fig3": report.render_figure3(stability)}


def _group_colocation(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report

    colocation = registry.run("colocation", dataset)
    return {"fig4": report.render_figure4(colocation)}


def _group_distance(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report
    from repro.rss.operators import root_server

    distance = registry.run("distance", dataset)
    b = root_server("b")
    m = root_server("m")
    return {
        "fig5": report.render_figure5(distance, [b.ipv4, b.ipv6, m.ipv4, m.ipv6])
    }


def _group_rtt(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report
    from repro.geo.continents import Continent

    rtt = registry.run("rtt", dataset)
    addresses = [sa.address for sa in dataset.addresses]
    return {
        "fig6": report.render_figure6(
            rtt,
            [Continent.AFRICA, Continent.SOUTH_AMERICA,
             Continent.NORTH_AMERICA, Continent.EUROPE],
            addresses, {},
        ),
        "fig14": report.render_figure6(rtt, list(Continent), addresses, {}),
    }


def _group_paths(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report
    from repro.geo.continents import Continent

    paths = registry.run("paths", dataset)
    return {
        "paths_sec6": "\n\n".join(
            report.render_path_breakdown(paths, continent, "i")
            for continent in (Continent.SOUTH_AMERICA, Continent.NORTH_AMERICA)
        )
    }


def _group_bitflip(dataset) -> Dict[str, str]:
    """Figure 10 from a reloaded dataset: descriptions only — the zone
    content a line diff needs is not persisted (``generate_all`` renders
    the full diff from the live results instead)."""
    from repro.analysis import registry

    audit = registry.run("zonemd_audit", dataset)
    return {"fig10": _bitflip_report(audit, None)}


def _group_isp(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report
    from repro.passive.recipes import ISP_WINDOW

    aggregate = dataset.passive.aggregate("isp")
    shift = registry.run("trafficshift", aggregate=aggregate)
    behavior = registry.run("clientbehavior", aggregate=aggregate)
    return {
        "fig7": report.render_traffic_series(
            f"Figure 7: ISP b.root traffic ({ISP_WINDOW[0]} .. {ISP_WINDOW[1]})",
            shift.broot_series(),
        ),
        "fig8": "\n\n".join(
            report.render_figure8(behavior, family) for family in (4, 6)
        ),
        "fig12": _letter_share_table(shift),
    }


def _group_ixp(dataset) -> Dict[str, str]:
    from repro.analysis import registry, report
    from repro.geo.continents import Continent

    out: Dict[str, str] = {}
    fig9_parts: List[str] = []
    for capture_name, region in (
        ("ixp-eu", Continent.EUROPE),
        ("ixp-na", Continent.NORTH_AMERICA),
    ):
        regional_shift = registry.run(
            "trafficshift", aggregate=dataset.passive.aggregate(capture_name)
        )
        fig9_parts.append(report.render_traffic_series(
            f"Figure 9 ({region}): IPv6 b.root traffic",
            regional_shift.broot_series(families=(6,)),
        ))
        if capture_name == "ixp-eu":
            out["fig13"] = _letter_share_table(regional_shift, title="Figure 13")
    out["fig9"] = "\n\n".join(fig9_parts)
    return out


_GROUPS = {
    "coverage": _group_coverage,
    "audit": _group_audit,
    "stability": _group_stability,
    "colocation": _group_colocation,
    "distance": _group_distance,
    "rtt": _group_rtt,
    "paths": _group_paths,
    "bitflip": _group_bitflip,
    "isp": _group_isp,
    "ixp": _group_ixp,
}


def _run_group(name: str, dataset_dir: str) -> Tuple[str, Dict[str, str], float]:
    """One group, timed — the unit a pool worker executes."""
    start = time.perf_counter()
    contents = _GROUPS[name](_load(dataset_dir))
    return name, contents, time.perf_counter() - start


def render_group(name: str, dataset) -> Dict[str, str]:
    """Render one artefact group from an in-memory dataset.

    The serving layer's figure endpoints go through here so a live
    checkpoint's *current* stitched dataset is what renders — the
    dir-keyed worker cache (:func:`_load`) would pin the first load
    forever.  Returns ``{artefact_name: content}``; unknown groups raise
    a :class:`KeyError` naming the registered ones.
    """
    try:
        group = _GROUPS[name]
    except KeyError:
        raise KeyError(
            f"unknown artefact group {name!r}; "
            f"registered: {', '.join(sorted(_GROUPS))}"
        ) from None
    return group(dataset)


def group_requirements_error(name: str, dataset) -> Optional[str]:
    """Why group *name* cannot run against *dataset* (``None`` = it can).

    The same preflight the report driver runs before dispatching to a
    worker, reusable per group: declared analysis tables present, and
    every passive capture the group replays on disk.
    """
    from repro.analysis import registry
    from repro.data import DatasetError

    for analysis in GROUP_ANALYSES[name]:
        try:
            dataset.require_tables(
                registry.tables_for(analysis), consumer=f"report group {name!r}"
            )
        except DatasetError as exc:
            return str(exc)
    for capture in GROUP_CAPTURES.get(name, ()):
        if dataset.passive is None or capture not in dataset.passive.names():
            return (
                f"report group {name!r} needs passive capture {capture!r}; "
                f"save the dataset with passive captures "
                f"(rootsim-study --save / StudyResults.save)"
            )
    return None


# --- shared renderers ---------------------------------------------------------------


def _letter_share_table(shift, title: str = "Figure 12") -> str:
    from repro.util.tables import Table, series_buckets

    series = shift.letter_share_series()
    buckets = series_buckets(series)
    window = (buckets[0], buckets[-1] + 1)
    shares = shift.letter_shares(*window)
    table = Table(["Root", "share %"], float_digits=2)
    for letter in sorted(shares, key=shares.get, reverse=True):
        table.add_row([letter, 100 * shares[letter]])
    return table.render(f"{title}: traffic share per letter")


def _bitflip_report(audit, distributor) -> str:
    lines = ["Figure 10: bitflips in transferred zones"]
    for obs, description in audit.bitflip_examples()[:5]:
        if distributor is None or obs.zone is None:
            # Replay mode: the zone content the diff needs is not in the
            # dataset; keep the fault inventory.
            lines.append(f"VP {obs.vp_id}, {obs.address.label}: {description}")
            lines.append("  (zone content not persisted; diff needs a live run)")
            continue
        reference = distributor.zone_for_publication(
            *distributor.latest_publication(obs.true_ts)
        )
        if reference.serial != obs.serial:
            continue
        for before, after in audit.bitflip_diff(obs, reference):
            lines.append(f"VP {obs.vp_id}, {obs.address.label}: {description}")
            lines.append(f"  - {before[:110]}")
            lines.append(f"  + {after[:110]}")
    if len(lines) == 1:
        lines.append("(no bitflipped transfers recorded in this run)")
    return "\n".join(lines)


# --- drivers ------------------------------------------------------------------------


def _generate(
    dataset_dir: str,
    out_path: Path,
    workers: int,
    precomputed: Dict[str, str],
    timings: Optional[Dict[str, float]] = None,
) -> Dict[str, Path]:
    """Run every group not covered by *precomputed* and write artefacts."""
    from repro.analysis import registry

    timings = dict(timings or {})
    written: Dict[str, Path] = {}

    def emit(name: str, content: str) -> None:
        target = out_path / f"{name}.txt"
        target.write_text(content + "\n")
        written[name] = target

    for name, content in precomputed.items():
        emit(name, content)

    groups = [
        name for name, artefacts in GROUP_ARTEFACTS.items()
        if not all(artefact in precomputed for artefact in artefacts)
    ]

    # Preflight in the main process: every group's analyses must find
    # their declared tables (and passive captures) in the saved dataset
    # before any worker starts.
    dataset = _load(dataset_dir)
    for group in groups:
        problem = group_requirements_error(group, dataset)
        if problem is not None:
            from repro.data import DatasetError

            raise DatasetError(problem)

    if workers > 1 and len(groups) > 1:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        from repro.util.procutil import exit_when_orphaned, mp_context, pool_width

        with ProcessPoolExecutor(
            max_workers=pool_width(workers, len(groups)),
            mp_context=mp_context(preload=("repro.reportgen",)),
            initializer=exit_when_orphaned,
            initargs=(os.getpid(),),
        ) as pool:
            futures = [
                pool.submit(_run_group, group, dataset_dir) for group in groups
            ]
            outcomes = [future.result() for future in as_completed(futures)]
    else:
        outcomes = [_run_group(group, dataset_dir) for group in groups]

    for group, contents, seconds in outcomes:
        timings[f"group.{group}"] = round(seconds, 4)
        for name, content in contents.items():
            emit(name, content)

    index = "\n".join(
        f"{name}: {target.name}" for name, target in sorted(written.items())
    )
    emit("INDEX", index)

    # Timings live next to the artefacts but outside the index/returned
    # set: re-runs byte-diff clean on everything but this file.
    artefact_timings = {
        artefact: timings[f"group.{group}"]
        for group, artefacts in GROUP_ARTEFACTS.items()
        for artefact in artefacts
        if f"group.{group}" in timings
    }
    (out_path / "TIMINGS.json").write_text(
        json.dumps(
            {"groups": timings, "artefacts": artefact_timings},
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    return written


def generate_all(
    study,
    out_dir: str,
    seed: int = 2024,
    workers: int = 1,
    engine: str = "vectorized",
) -> Dict[str, Path]:
    """Write every artefact for a finished *study*; returns name -> path.

    Persists the study's dataset (passive captures for *seed* included)
    under ``out_dir/dataset`` first, then fans the artefact groups out
    over *workers* processes (or runs them inline when ``workers == 1``)
    against that saved dataset.  *engine* selects the passive-capture
    engine ("vectorized" or the reference "scalar"); both produce
    byte-identical artefacts.
    """
    from repro.analysis import registry
    from repro.data.passive import PassiveStore
    from repro.passive.recipes import standard_captures

    results = study.results()
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)

    timings: Dict[str, float] = {}
    start = time.perf_counter()
    dataset = results.dataset
    if dataset.passive is None:
        dataset.attach_passive(
            PassiveStore.from_aggregates(
                standard_captures(
                    seed, engine=engine, traffic=results.config.traffic_spec()
                )
            )
        )
    dataset_dir = out_path / "dataset"
    results.save(str(dataset_dir))
    timings["dataset"] = round(time.perf_counter() - start, 4)

    # Figure 10 renders in the main process from the live results: its
    # line diff needs transferred zone content, which the dataset does
    # not carry.
    start = time.perf_counter()
    audit = registry.run("zonemd_audit", results)
    precomputed = {"fig10": _bitflip_report(audit, results.distributor)}
    timings["group.bitflip"] = round(time.perf_counter() - start, 4)

    return _generate(
        str(dataset_dir), out_path, workers, precomputed, timings=timings
    )


def generate_from_dataset(
    dataset_dir: str, out_dir: str, workers: int = 1
) -> Dict[str, Path]:
    """Replay every artefact from a saved dataset — zero re-simulation.

    The dataset must have been saved with passive captures (the default
    for ``rootsim-study --save``).  Figure 10 degrades to the fault
    descriptions; everything else is byte-identical to a live run.
    """
    out_path = Path(out_dir)
    out_path.mkdir(parents=True, exist_ok=True)
    return _generate(str(dataset_dir), out_path, workers, {})


def report_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``rootsim-report``."""
    parser = argparse.ArgumentParser(
        prog="rootsim-report",
        description="regenerate every paper table/figure into a directory",
    )
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument(
        "--preset", choices=("quick", "standard", "paper"), default="quick"
    )
    parser.add_argument(
        "--scenario", metavar="NAME",
        help="run a registered scenario instead of --preset "
             "(see repro.scenarios)",
    )
    parser.add_argument(
        "--overlay", metavar="NAME", action="append", default=[],
        help="fold a registered overlay onto --scenario (repeatable)",
    )
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--workers", type=int, default=1,
        help="generate artefact groups across N processes "
             "(output is byte-identical to a serial run)",
    )
    parser.add_argument(
        "--engine", choices=("vectorized", "scalar"), default="vectorized",
        help="passive-capture engine ('scalar' is the reference triple "
             "loop; byte-identical but much slower)",
    )
    parser.add_argument(
        "--dataset", metavar="DIR", default=None,
        help="replay artefacts from a saved dataset directory instead of "
             "running a campaign (fig10 degrades to fault descriptions)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be >= 1")

    if args.dataset is not None:
        print(f"replaying artefacts from {args.dataset} ...")
        written = generate_from_dataset(
            args.dataset, args.out, workers=args.workers
        )
    else:
        from repro.core import RootStudy, StudyConfig

        if args.scenario:
            from repro.scenarios import MergeError, compose

            try:
                config = compose(args.scenario, args.overlay).study_config(
                    seed=args.seed
                )
            except (KeyError, MergeError, ValueError) as exc:
                parser.error(str(exc.args[0] if exc.args else exc))
            print(f"running scenario {args.scenario} (seed {args.seed}) ...")
        elif args.overlay:
            parser.error("--overlay requires --scenario")
        else:
            config = {
                "quick": StudyConfig.quick,
                "standard": StudyConfig.standard,
                "paper": StudyConfig.paper_scale,
            }[args.preset](seed=args.seed)
            print(f"running {args.preset} study (seed {args.seed}) ...")
        study = RootStudy(config)
        study.run()
        written = generate_all(
            study, args.out, seed=args.seed,
            workers=args.workers, engine=args.engine,
        )
    print(f"wrote {len(written)} artefacts to {args.out}:")
    for name in sorted(written):
        print(f"  {name}.txt")
    return 0
