"""Generate every table and figure into a directory.

``rootsim-report --out DIR`` runs a campaign plus the passive captures
and writes one text file per paper artefact (table1.txt .. fig14.txt,
ablation-style extras included), plus an index.  This is the one-command
"regenerate the paper" path; the benchmarks wrap the same calls with
timing and shape assertions.
"""

from __future__ import annotations

import argparse
from pathlib import Path
from typing import Dict, List, Optional

from repro.util.timeutil import parse_ts


def generate_all(study, out_dir: str, seed: int = 2024) -> Dict[str, Path]:
    """Write every artefact for a finished *study*; returns name -> path."""
    from repro.analysis import registry, report
    from repro.geo.continents import Continent
    from repro.passive.clients import ISP_PROFILE, build_client_population
    from repro.passive.isp import IspCapture
    from repro.passive.ixp import build_ixp_captures, regional_aggregate
    from repro.rss.operators import root_server
    from repro.util.rng import RngFactory

    results = study.results()
    path = Path(out_dir)
    path.mkdir(parents=True, exist_ok=True)
    written: Dict[str, Path] = {}

    def emit(name: str, content: str) -> None:
        target = path / f"{name}.txt"
        target.write_text(content + "\n")
        written[name] = target

    coverage = registry.run("coverage", results)
    emit("table1", report.render_table1(coverage))
    emit("table4", report.render_table4(coverage))

    audit = registry.run("zonemd_audit", results)
    findings, valid = audit.validate_transfers()
    emit("table2", report.render_table2(findings, valid))

    stability = registry.run("stability", results)
    emit("fig3", report.render_figure3(stability))

    colocation = registry.run("colocation", results)
    emit("fig4", report.render_figure4(colocation))

    distance = registry.run("distance", results)
    b = root_server("b")
    m = root_server("m")
    emit("fig5", report.render_figure5(distance, [b.ipv4, b.ipv6, m.ipv4, m.ipv6]))

    rtt = registry.run("rtt", results)
    addresses = [sa.address for sa in results.collector.addresses]
    emit("fig6", report.render_figure6(
        rtt,
        [Continent.AFRICA, Continent.SOUTH_AMERICA,
         Continent.NORTH_AMERICA, Continent.EUROPE],
        addresses, {},
    ))
    emit("fig14", report.render_figure6(rtt, list(Continent), addresses, {}))

    paths = registry.run("paths", results)
    emit("paths_sec6", "\n\n".join(
        report.render_path_breakdown(paths, continent, "i")
        for continent in (Continent.SOUTH_AMERICA, Continent.NORTH_AMERICA)
    ))

    # Passive artefacts.
    rng = RngFactory(seed)
    isp = IspCapture(build_client_population(ISP_PROFILE, rng), seed=seed)
    post = isp.capture(parse_ts("2024-02-05"), parse_ts("2024-03-04"))
    shift = registry.run("trafficshift", aggregate=post)
    emit("fig7", report.render_traffic_series(
        "Figure 7: ISP b.root traffic (2024-02-05 .. 2024-03-04)",
        shift.broot_series(),
    ))
    behavior = registry.run("clientbehavior", aggregate=post)
    emit("fig8", "\n\n".join(
        report.render_figure8(behavior, family) for family in (4, 6)
    ))
    emit("fig12", _letter_share_table(shift))

    captures = build_ixp_captures(rng.fork("ixp"), seed=seed, clients_per_ixp=120)
    window = (parse_ts("2023-12-08"), parse_ts("2023-12-28"))
    fig9_parts: List[str] = []
    fig13_content: Optional[str] = None
    for region in (Continent.EUROPE, Continent.NORTH_AMERICA):
        aggregate = regional_aggregate(captures, region, *window)
        regional_shift = registry.run("trafficshift", aggregate=aggregate)
        fig9_parts.append(report.render_traffic_series(
            f"Figure 9 ({region}): IPv6 b.root traffic",
            regional_shift.broot_series(families=(6,)),
        ))
        if region is Continent.EUROPE:
            fig13_content = _letter_share_table(regional_shift, title="Figure 13")
    emit("fig9", "\n\n".join(fig9_parts))
    if fig13_content:
        emit("fig13", fig13_content)

    emit("fig10", _bitflip_report(audit, results))

    index = "\n".join(
        f"{name}: {target.name}" for name, target in sorted(written.items())
    )
    emit("INDEX", index)
    return written


def _letter_share_table(shift, title: str = "Figure 12") -> str:
    from repro.util.tables import Table, series_buckets

    series = shift.letter_share_series()
    buckets = series_buckets(series)
    window = (buckets[0], buckets[-1] + 1)
    shares = shift.letter_shares(*window)
    table = Table(["Root", "share %"], float_digits=2)
    for letter in sorted(shares, key=shares.get, reverse=True):
        table.add_row([letter, 100 * shares[letter]])
    return table.render(f"{title}: traffic share per letter")


def _bitflip_report(audit, results) -> str:
    lines = ["Figure 10: bitflips in transferred zones"]
    for obs, description in audit.bitflip_examples()[:5]:
        reference = results.distributor.zone_for_publication(
            *results.distributor.latest_publication(obs.true_ts)
        )
        if reference.serial != obs.serial:
            continue
        for before, after in audit.bitflip_diff(obs, reference):
            lines.append(f"VP {obs.vp_id}, {obs.address.label}: {description}")
            lines.append(f"  - {before[:110]}")
            lines.append(f"  + {after[:110]}")
    if len(lines) == 1:
        lines.append("(no bitflipped transfers recorded in this run)")
    return "\n".join(lines)


def report_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``rootsim-report``."""
    parser = argparse.ArgumentParser(
        prog="rootsim-report",
        description="regenerate every paper table/figure into a directory",
    )
    parser.add_argument("--out", required=True, help="output directory")
    parser.add_argument(
        "--preset", choices=("quick", "standard", "paper"), default="quick"
    )
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args(argv)

    from repro.core import RootStudy, StudyConfig

    config = {
        "quick": StudyConfig.quick,
        "standard": StudyConfig.standard,
        "paper": StudyConfig.paper_scale,
    }[args.preset](seed=args.seed)
    print(f"running {args.preset} study (seed {args.seed}) ...")
    study = RootStudy(config)
    study.run()
    written = generate_all(study, args.out, seed=args.seed)
    print(f"wrote {len(written)} artefacts to {args.out}:")
    for name in sorted(written):
        print(f"  {name}.txt")
    return 0
