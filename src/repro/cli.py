"""Command-line tools.

Four entry points, mirroring the workflows a downstream user runs:

* ``rootsim-study`` — run a campaign preset and print the headline
  results (``--save DIR`` persists the measurement dataset),
* ``rootsim-analyze`` — run any registered analysis against a saved
  dataset directory, with zero re-simulation,
* ``rootsim-dig`` — a dig-alike against the simulated root system,
* ``rootsim-zonecheck`` — build/fetch a root zone copy for a date and
  fully validate it (with an optional bitflip demo).

All tools are deterministic given ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.util.timeutil import format_ts, parse_ts


def _build_world(seed: int):
    """A small shared world for dig/zonecheck: fabric + deployments.

    Goes through the pipeline's world stage, so repeated invocations in
    one process (and the study CLI itself) share the cached world."""
    from repro.core.config import StudyConfig
    from repro.core.pipeline import build_world

    world = build_world(StudyConfig(seed=seed))
    return world.fabric, world.deployments, world.distributor


# --- rootsim-dig -----------------------------------------------------------------


def dig_main(argv: Optional[List[str]] = None) -> int:
    """Query the simulated root system, dig-style."""
    parser = argparse.ArgumentParser(
        prog="rootsim-dig",
        description="dig against the simulated root server system",
    )
    parser.add_argument("server", help="root service address, e.g. @198.41.0.4")
    parser.add_argument("qname", help="query name, e.g. . or world.")
    parser.add_argument("qtype", nargs="?", default="NS", help="query type")
    parser.add_argument("--chaos", action="store_true", help="CHAOS class query")
    parser.add_argument("--dnssec", action="store_true", help="set the DO bit")
    parser.add_argument("--from-city", default="FRA", help="client city (IATA)")
    parser.add_argument("--at", default="2023-12-10T12:00:00", help="query time")
    parser.add_argument("--seed", type=int, default=2024)
    args = parser.parse_args(argv)

    from repro.dns.constants import RRClass, RRType
    from repro.dns.edns import add_edns
    from repro.dns.message import Message
    from repro.dns.name import Name
    from repro.geo.cities import city
    from repro.netsim.attachment import Attachment
    from repro.netsim.transit import TRANSIT_CATALOG
    from repro.resolver.netclient import RootNetworkClient

    if not args.server.startswith("@"):
        parser.error("server must start with @")
    address = args.server[1:]
    ts = parse_ts(args.at)

    fabric, deployments, _distributor = _build_world(args.seed)
    attachment = Attachment(
        asn=64999,
        city=city(args.from_city),
        transits_v4=(TRANSIT_CATALOG[2], TRANSIT_CATALOG[3]),
        transits_v6=(TRANSIT_CATALOG[0], TRANSIT_CATALOG[2]),
    )
    client = RootNetworkClient(
        attachment, fabric.selector(seed=args.seed, expected_rounds=100), deployments, 0
    )

    qclass = RRClass.CH if args.chaos else RRClass.IN
    query = Message.make_query(
        Name.from_text(args.qname), RRType.from_text(args.qtype), qclass
    )
    if args.dnssec:
        add_edns(query, dnssec_ok=True)
    outcome = client.query(address, query, ts)

    response = outcome.response
    print(f";; {args.qname} {qclass.name} {args.qtype} @{address} "
          f"(from {args.from_city}, {format_ts(ts)})")
    print(f";; ->>HEADER<<- rcode: {response.header.rcode.name}, "
          f"aa: {int(response.header.aa)}, answers: {len(response.answers)}, "
          f"authority: {len(response.authority)}")
    for section, records in (("ANSWER", response.answers), ("AUTHORITY", response.authority)):
        if records:
            print(f";; {section} SECTION:")
            for record in records:
                print(record.to_text())
    print(f";; SERVER: {address} ({outcome.letter}.root, site {outcome.site_key})")
    print(f";; Query time: {outcome.rtt_ms:.1f} ms")
    return 0


# --- rootsim-zonecheck ------------------------------------------------------------


def zonecheck_main(argv: Optional[List[str]] = None) -> int:
    """Validate a root zone copy for a given date."""
    parser = argparse.ArgumentParser(
        prog="rootsim-zonecheck",
        description="build and fully validate a simulated root zone copy",
    )
    parser.add_argument("--at", default="2023-12-10T12:00:00", help="zone date")
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--bitflip", action="store_true",
        help="flip one bit before validating (detection demo)",
    )
    parser.add_argument("--dump", metavar="FILE", help="write master file")
    args = parser.parse_args(argv)

    from repro.dns.name import ROOT_NAME
    from repro.dnssec.validate import validate_zone
    from repro.dnssec.zonemd import verify_zonemd
    from repro.zone.distribution import ZoneDistributor
    from repro.zone.rootzone import RootZoneBuilder
    from repro.zone.zonefile import render_zone_text

    ts = parse_ts(args.at)
    distributor = ZoneDistributor(RootZoneBuilder(seed=args.seed))
    zone = distributor.zone_at_site("zonecheck", ts)
    if args.bitflip:
        from repro.faults.bitflip import BitflipEvent, flip_bit_in_zone

        event = BitflipEvent(vp_id=0, start_ts=ts - 1, end_ts=ts + 1)
        zone, report = flip_bit_in_zone(zone, event, ts)
        print(f";; injected bitflip: {report.description}")

    print(f";; zone serial {zone.serial} ({len(zone)} records) at {format_ts(ts)}")
    report = validate_zone(zone.records, ROOT_NAME, now=ts, check_zonemd=False)
    print(f";; DNSSEC: {'valid' if report.valid else 'INVALID'} "
          f"({report.rrsets_checked} RRsets checked)")
    for issue in report.issues[:5]:
        print(f";;   {issue.error.value} at {issue.name.to_text()}")
    status, detail = verify_zonemd(zone.records, ROOT_NAME)
    print(f";; ZONEMD: {status.name} — {detail}")

    if args.dump:
        with open(args.dump, "w") as handle:
            handle.write(render_zone_text(zone))
        print(f";; zone written to {args.dump}")
    return 0 if report.valid and status.name in ("VALID", "ABSENT", "UNSUPPORTED_ALGORITHM") else 1


# --- rootsim-study ------------------------------------------------------------------


def _add_scenario_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario", metavar="NAME",
        help="run a registered scenario (see repro.scenarios; e.g. "
             "'default', 'paper', 'froot-sea', 'broot-querymix'); "
             "overrides --preset",
    )
    parser.add_argument(
        "--overlay", metavar="NAME", action="append", default=[],
        help="fold a registered overlay onto --scenario (repeatable, "
             "applied in order)",
    )


def _compose_scenario(parser: argparse.ArgumentParser, args):
    """The composed scenario for --scenario/--overlay (exits on error)."""
    from repro.scenarios import MergeError, compose

    try:
        return compose(args.scenario, args.overlay)
    except (KeyError, MergeError, ValueError) as exc:
        parser.error(str(exc.args[0] if exc.args else exc))


def study_main(argv: Optional[List[str]] = None) -> int:
    """Run a campaign preset or registered scenario and print headline
    results."""
    parser = argparse.ArgumentParser(
        prog="rootsim-study",
        description="run a simulated root measurement campaign",
    )
    parser.add_argument(
        "--preset", choices=("quick", "standard", "paper"), default="quick"
    )
    _add_scenario_arguments(parser)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument(
        "--save", "--export", dest="save", metavar="DIR",
        help="persist the measurement dataset to DIR "
             "(reload with rootsim-analyze)",
    )
    parser.add_argument(
        "--shards", type=int, default=1,
        help="partition the VP ring into N independently probed shards "
             "(output is identical to a serial run)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="run shards across N worker processes (requires --shards > 1)",
    )
    parser.add_argument(
        "--timings", action="store_true", help="print per-stage wall times"
    )
    parser.add_argument(
        "--engine", choices=("epoch", "scalar"), default=None,
        help="campaign engine (default: the preset's engine, normally "
             "'epoch'; 'scalar' walks every round and is byte-identical "
             "but much slower)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="cProfile the campaign stage; prints the hot functions and "
             "stores the full profile in the pipeline's artifact store",
    )
    parser.add_argument(
        "--checkpoint", metavar="DIR",
        help="stream the campaign through a checkpoint directory, sealing "
             "a resumable chunk every --checkpoint-every rounds; a killed "
             "run restarts from the last sealed chunk with --resume DIR",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=8, metavar="N",
        help="rounds per sealed chunk in --checkpoint/--resume mode "
             "(default: 8)",
    )
    parser.add_argument(
        "--resume", metavar="DIR",
        help="resume a streamed campaign from its checkpoint directory; "
             "the study configuration comes from the checkpoint, so "
             "--preset/--seed/--shards/--engine are ignored "
             "(--scenario, if given, is validated against the "
             "checkpoint's scenario fingerprint)",
    )
    args = parser.parse_args(argv)

    from repro.analysis import registry
    from repro.core import RootStudy, StudyConfig

    if args.resume and args.checkpoint:
        parser.error("--checkpoint and --resume are mutually exclusive")
    if args.resume or args.checkpoint:
        if args.profile:
            parser.error("--profile is not available in streaming mode")
        return _streaming_study_main(args, parser)

    if args.scenario:
        config = _compose_scenario(parser, args).study_config(seed=args.seed)
        label = f"scenario={args.scenario}"
        if args.overlay:
            label += f"+{'+'.join(args.overlay)}"
    elif args.overlay:
        parser.error("--overlay requires --scenario")
    else:
        config = {
            "quick": StudyConfig.quick,
            "standard": StudyConfig.standard,
            "paper": StudyConfig.paper_scale,
        }[args.preset](seed=args.seed)
        label = f"preset={args.preset}"
    if args.shards < 1 or args.workers < 1:
        parser.error("--shards and --workers must be >= 1")
    if args.shards > 1 or args.workers > 1:
        config = config.with_sharding(args.shards, workers=args.workers)
    if args.engine is not None:
        config = config.with_engine(args.engine)

    print(f"building study: {label} seed={args.seed}")
    study = RootStudy(config, profile=args.profile)
    print(f"  {len(study.vps)} VPs, {len(study.catalog)} sites, "
          f"{study.schedule.round_count()} rounds")
    if config.shards > 1:
        print(f"  sharding: {config.shards} shards, {config.workers} worker(s)")
    results = study.run()
    summary = results.summary()
    print(f"  {summary['queries']:,} queries, {summary['transfers']:,} transfers")

    colocation = registry.run("colocation", results)
    print(f"RQ1  co-location >=2 letters: "
          f"{100 * colocation.fraction_with_colocation():.1f}% of VPs")
    stability = registry.run("stability", results)
    print(f"RQ2  median changes: b.root v4="
          f"{stability.median_changes('b', 4, 'new'):g} "
          f"g.root v4={stability.median_changes('g', 4):g} "
          f"v6={stability.median_changes('g', 6):g}")
    findings, valid = registry.run("zonemd_audit", results).validate_transfers()
    print(f"RQ3  transfer audit: {valid} valid, {len(findings)} finding groups")
    coverage = registry.run("coverage", results)
    total, unmapped = coverage.observed_identifier_count()
    print(f"coverage: {total} identifiers observed, {unmapped} unmapped")

    if args.timings or args.profile:
        for timing in study.timings:
            suffix = " (cached)" if timing.reused else ""
            print(f"timing  {timing.stage:<14s} {timing.seconds:8.2f}s{suffix}")
    if args.profile:
        print(study.pipeline.store.get("campaign_profile_top"))

    if args.save:
        path = results.save(args.save)
        print(f"dataset saved to {path}")
    return 0


def _streaming_study_main(args, parser) -> int:
    """The --checkpoint/--resume path of ``rootsim-study``.

    Runs the campaign through :func:`run_streaming_campaign` so progress
    survives a crash; ``--save`` finalizes the sealed chunks into an
    ordinary dataset directory, byte-identical to a batch save."""
    from repro.core import StudyConfig
    from repro.core.streaming import (
        config_from_checkpoint,
        finalize_streaming_campaign,
        run_streaming_campaign,
    )
    from repro.data import CheckpointError

    resume = args.resume is not None
    checkpoint_dir = args.resume if resume else args.checkpoint
    try:
        if resume:
            config = config_from_checkpoint(checkpoint_dir)
            if args.scenario:
                expected = _compose_scenario(parser, args).fingerprint()
                actual = config.scenario_fingerprint
                if actual != expected:
                    raise CheckpointError(
                        f"checkpoint at {checkpoint_dir} was produced by "
                        f"scenario {config.scenario_name!r} (fingerprint "
                        f"{actual}), not the requested {args.scenario!r} "
                        f"(fingerprint {expected}); refusing to resume"
                    )
            print(f"resuming streamed study from {checkpoint_dir}: "
                  f"seed={config.seed} engine={config.engine} "
                  f"shards={config.shards}")
        else:
            if args.scenario:
                config = _compose_scenario(parser, args).study_config(
                    seed=args.seed
                )
                label = f"scenario={args.scenario}"
            elif args.overlay:
                parser.error("--overlay requires --scenario")
            else:
                config = {
                    "quick": StudyConfig.quick,
                    "standard": StudyConfig.standard,
                    "paper": StudyConfig.paper_scale,
                }[args.preset](seed=args.seed)
                label = f"preset={args.preset}"
            if args.shards < 1 or args.workers < 1:
                parser.error("--shards and --workers must be >= 1")
            if args.shards > 1 or args.workers > 1:
                config = config.with_sharding(args.shards, workers=args.workers)
            if args.engine is not None:
                config = config.with_engine(args.engine)
            print(f"streaming study: {label} seed={args.seed} "
                  f"-> {checkpoint_dir}")

        def progress(index, _chunk_dir, lo, hi):
            print(f"  sealed chunk {index:06d}: rounds [{lo}, {hi})")

        run = run_streaming_campaign(
            config,
            checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            resume=resume,
            after_chunk=progress,
        )
        summary = run.collector.summary()
        print(f"  {run.rounds_done}/{run.n_rounds} rounds in "
              f"{run.chunks} chunk(s): {summary['queries']:,} queries, "
              f"{summary['transfers']:,} transfers")
        if args.save:
            path = finalize_streaming_campaign(checkpoint_dir, args.save)
            print(f"dataset saved to {path}")
        else:
            print(f"analyze sealed rounds with: rootsim-analyze "
                  f"{checkpoint_dir}")
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


# --- rootsim-analyze ----------------------------------------------------------------


def analyze_main(argv: Optional[List[str]] = None) -> int:
    """Run a registered analysis against a saved dataset directory."""
    parser = argparse.ArgumentParser(
        prog="rootsim-analyze",
        description="run a registered analysis against a dataset saved by "
                    "rootsim-study --save, without re-running the campaign",
    )
    parser.add_argument("dataset", metavar="DIR", help="dataset directory")
    parser.add_argument(
        "analysis", nargs="?",
        help="registered analysis name (omit to list the dataset's "
             "contents and the runnable analyses)",
    )
    parser.add_argument(
        "--scenario", metavar="NAME",
        help="require the dataset to have been produced by this "
             "registered scenario (fingerprint-checked; exits 2 on "
             "mismatch)",
    )
    parser.add_argument(
        "--overlay", metavar="NAME", action="append", default=[],
        help="overlays the requested --scenario was composed with",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="emit the canonical JSON document instead of the text "
             "summary (byte-identical to what rootsim-serve returns "
             "for the same analysis)",
    )
    args = parser.parse_args(argv)

    from repro.analysis import registry
    from repro.analysis.summaries import (
        PASSIVE_ANALYSES,
        analysis_inputs,
        canonical_json_bytes,
        render_json,
        render_summary,
    )
    from repro.data import DatasetError, load_dataset

    try:
        dataset = load_dataset(args.dataset)
    except DatasetError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.overlay and not args.scenario:
        parser.error("--overlay requires --scenario")
    if args.scenario:
        expected = _compose_scenario(parser, args).fingerprint()
        stamp = (dataset.study or {}).get("scenario") or {}
        actual = stamp.get("fingerprint")
        if actual != expected:
            produced = (
                f"scenario {stamp['name']!r} (fingerprint {actual})"
                if stamp else "no registered scenario"
            )
            print(
                f"error: dataset {args.dataset} was produced by {produced}, "
                f"not the requested {args.scenario!r} (fingerprint "
                f"{expected}); refusing to analyze it as that scenario",
                file=sys.stderr,
            )
            return 2

    if args.analysis is None:
        if args.json:
            parser.error("--json requires an analysis name")
        summary = dataset.summary()
        print(f"dataset {args.dataset} (schema v{dataset.version})")
        checkpoint = dataset.meta.get("checkpoint") if dataset.meta else None
        if checkpoint:
            print(f"  streamed checkpoint: {checkpoint['rounds_done']}/"
                  f"{checkpoint['n_rounds']} rounds sealed in "
                  f"{checkpoint['chunks']} chunk(s)")
        print(f"  tables: {', '.join(dataset.table_names())}")
        if dataset.passive is not None:
            print(f"  passive captures: {', '.join(dataset.passive.names())}")
        print(f"  {summary.get('queries', 0):,} queries, "
              f"{summary.get('probe_samples', 0):,} probe samples, "
              f"{summary.get('transfer_observations', 0):,} transfer records")
        runnable = sorted(set(registry.runnable(dataset)) | set(PASSIVE_ANALYSES))
        print(f"  runnable analyses: {', '.join(runnable)}")
        return 0

    try:
        # Datasets saved with passive tables replay the capture aggregate
        # straight from disk; older live saves rebuild it from the
        # recorded study seed — resolved by analysis_inputs, shared with
        # the serving layer so both feed the analysis identical inputs.
        inputs = analysis_inputs(dataset, args.analysis)
        analysis = registry.run(args.analysis, dataset, **inputs)
    except (KeyError, DatasetError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"error: {message}", file=sys.stderr)
        return 2
    if args.json:
        sys.stdout.buffer.write(
            canonical_json_bytes(render_json(args.analysis, analysis)) + b"\n"
        )
        sys.stdout.buffer.flush()
    else:
        print(render_summary(args.analysis, analysis))
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution helper
    sys.exit(study_main())
