"""RRSIG generation (RFC 4034 §3.1).

The signature input is ``RRSIG_RDATA | RR(1) | RR(2) | ...`` with records
in canonical form and canonical RDATA order, TTLs replaced by the RRSIG's
Original TTL field — byte-for-byte the RFC construction, with the HMAC
primitive substituted (see :mod:`repro.dnssec.keys`).
"""

from __future__ import annotations

from typing import Iterable, List

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name
from repro.dns.rdata import RRSIG
from repro.dns.records import ResourceRecord, RRset, group_rrsets
from repro.dnssec.keys import KeyPair

#: Default signature validity window used by the simulated root zone,
#: mirroring the ~2-week windows visible in the paper's Figure 10 RRSIGs.
DEFAULT_VALIDITY_SECONDS = 13 * 86400


def sign_rrset(
    rrset: RRset,
    key: KeyPair,
    signer: Name,
    inception: int,
    expiration: int,
) -> ResourceRecord:
    """Produce the RRSIG record covering *rrset*."""
    if expiration <= inception:
        raise ValueError(
            f"expiration {expiration} not after inception {inception}"
        )
    original_ttl = rrset.ttl
    template = RRSIG(
        type_covered=int(rrset.rrtype),
        algorithm=key.dnskey.algorithm,
        labels=len(rrset.name),
        original_ttl=original_ttl,
        expiration=expiration,
        inception=inception,
        key_tag=key.key_tag,
        signer=signer,
        signature=b"",
    )
    signed_data = template.signed_data_prefix() + rrset.canonical_wire(original_ttl)
    signature = key.sign_bytes(signed_data)
    rdata = RRSIG(
        type_covered=template.type_covered,
        algorithm=template.algorithm,
        labels=template.labels,
        original_ttl=template.original_ttl,
        expiration=template.expiration,
        inception=template.inception,
        key_tag=template.key_tag,
        signer=signer,
        signature=signature,
    )
    return ResourceRecord(
        name=rrset.name,
        rrtype=RRType.RRSIG,
        rrclass=RRClass(rrset.rrclass),
        ttl=original_ttl,
        rdata=rdata,
    )


def sign_zone_records(
    records: Iterable[ResourceRecord],
    zsk: KeyPair,
    ksk: KeyPair,
    apex: Name,
    inception: int,
    expiration: int,
    sign_delegations: bool = False,
) -> List[ResourceRecord]:
    """Sign all authoritative RRsets of a zone; returns records + RRSIGs.

    Mirrors real root-zone signing:

    * the DNSKEY RRset is signed by the KSK,
    * every other *authoritative* RRset by the ZSK,
    * delegation NS RRsets below the apex and glue are NOT signed
      (RFC 4035 §2.2) — which is precisely why ZONEMD adds value (§7 of
      the paper: the digest also covers delegations and glue).
    """
    records = list(records)
    out: List[ResourceRecord] = list(records)
    for rrset in group_rrsets(records):
        if rrset.rrtype == RRType.RRSIG:
            continue
        is_apex = rrset.name == apex
        if not is_apex and not sign_delegations:
            # Non-apex data in the root zone is delegation NS + glue:
            # not authoritative, not signed.
            if rrset.rrtype in (RRType.NS, RRType.A, RRType.AAAA):
                continue
        key = ksk if rrset.rrtype == RRType.DNSKEY else zsk
        out.append(sign_rrset(rrset, key, apex, inception, expiration))
    return out
