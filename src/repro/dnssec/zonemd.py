"""ZONEMD — Message Digest for DNS Zones (RFC 8976), implemented exactly.

This is the integrity mechanism whose roll-out the paper's RQ3 follows:
a placeholder record with a private hash algorithm appeared in the root
zone on 2023-09-13, and a verifiable SHA-384 digest from 2023-12-06.

Digest computation (RFC 8976 §3.3.1, SIMPLE scheme):

* sort all zone records into RFC 4034 §6 canonical order,
* exclude the apex ZONEMD RRset itself and RRSIGs covering it,
* exclude duplicate RRs,
* concatenate each record's canonical wire form and hash.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Iterable, List, Optional, Tuple

from repro.dns.constants import (
    RRType,
    ZONEMD_ALG_PRIVATE,
    ZONEMD_ALG_SHA384,
    ZONEMD_ALG_SHA512,
    ZONEMD_SCHEME_SIMPLE,
)
from repro.dns.name import Name
from repro.dns.rdata import RRSIG, SOA, ZONEMD
from repro.dns.records import ResourceRecord


class ZonemdStatus(enum.Enum):
    """Outcome of ZONEMD verification (RFC 8976 §4)."""

    VALID = "digest matches"
    MISMATCH = "digest mismatch"
    ABSENT = "no ZONEMD record"
    UNSUPPORTED_ALGORITHM = "unsupported scheme/algorithm"
    SERIAL_MISMATCH = "ZONEMD serial does not match SOA serial"


_HASHERS = {
    ZONEMD_ALG_SHA384: hashlib.sha384,
    ZONEMD_ALG_SHA512: hashlib.sha512,
}


def _digest_input_records(
    records: Iterable[ResourceRecord], apex: Name
) -> List[ResourceRecord]:
    """Records included in the digest, in canonical order, deduplicated."""
    included: List[ResourceRecord] = []
    seen = set()
    for rec in records:
        if rec.name == apex and rec.rrtype == RRType.ZONEMD:
            continue  # §3.3.1: exclude apex ZONEMD RRset
        if (
            rec.name == apex
            and rec.rrtype == RRType.RRSIG
            and isinstance(rec.rdata, RRSIG)
            and rec.rdata.type_covered == int(RRType.ZONEMD)
        ):
            continue  # exclude RRSIGs covering the apex ZONEMD
        wire = rec.canonical_wire()
        if wire in seen:
            continue  # §3.3: duplicate RRs must be excluded
        seen.add(wire)
        included.append(rec)
    # Canonical order: owner name (RFC 4034 §6.1), then type, then RDATA.
    included.sort(
        key=lambda r: (r.name.canonical_key(), int(r.rrtype), r.rdata.canonical_wire())
    )
    return included


def compute_zone_digest(
    records: Iterable[ResourceRecord],
    apex: Name,
    hash_algorithm: int = ZONEMD_ALG_SHA384,
) -> bytes:
    """Compute the SIMPLE-scheme digest over a zone's records."""
    hasher_factory = _HASHERS.get(hash_algorithm)
    if hasher_factory is None:
        raise ValueError(f"unsupported ZONEMD hash algorithm {hash_algorithm}")
    hasher = hasher_factory()
    for rec in _digest_input_records(records, apex):
        hasher.update(rec.canonical_wire())
    return hasher.digest()


def make_zonemd_record(
    records: Iterable[ResourceRecord],
    apex: Name,
    soa_serial: int,
    ttl: int = 86400,
    hash_algorithm: int = ZONEMD_ALG_SHA384,
) -> ResourceRecord:
    """Build the apex ZONEMD record for a zone.

    With ``hash_algorithm=ZONEMD_ALG_PRIVATE`` this produces the
    non-verifiable placeholder deployed in the root zone between
    2023-09-13 and 2023-12-06: a fixed-size digest that verifiers must
    treat as inconclusive (RFC 8976 §4 step 5).
    """
    from repro.dns.constants import RRClass  # local to avoid cycle noise

    if hash_algorithm == ZONEMD_ALG_PRIVATE:
        digest = b"\x00" * 48  # placeholder digest, never verifiable
    else:
        digest = compute_zone_digest(records, apex, hash_algorithm)
    rdata = ZONEMD(
        serial=soa_serial,
        scheme=ZONEMD_SCHEME_SIMPLE,
        hash_algorithm=hash_algorithm,
        digest=digest,
    )
    return ResourceRecord(apex, RRType.ZONEMD, RRClass.IN, ttl, rdata)


def find_zonemd(
    records: Iterable[ResourceRecord], apex: Name
) -> Optional[ZONEMD]:
    """The apex ZONEMD rdata, or None."""
    for rec in records:
        if rec.name == apex and rec.rrtype == RRType.ZONEMD:
            assert isinstance(rec.rdata, ZONEMD)
            return rec.rdata
    return None


def _soa_serial(records: Iterable[ResourceRecord], apex: Name) -> Optional[int]:
    for rec in records:
        if rec.name == apex and rec.rrtype == RRType.SOA:
            assert isinstance(rec.rdata, SOA)
            return rec.rdata.serial
    return None


def verify_zonemd(
    records: Iterable[ResourceRecord], apex: Name
) -> Tuple[ZonemdStatus, str]:
    """Verify a zone copy's ZONEMD per RFC 8976 §4.

    Returns ``(status, human-readable detail)``.
    """
    records = list(records)
    zonemd = find_zonemd(records, apex)
    if zonemd is None:
        return ZonemdStatus.ABSENT, "zone has no apex ZONEMD record"
    serial = _soa_serial(records, apex)
    if serial is not None and zonemd.serial != serial:
        return (
            ZonemdStatus.SERIAL_MISMATCH,
            f"ZONEMD serial {zonemd.serial} != SOA serial {serial}",
        )
    if zonemd.scheme != ZONEMD_SCHEME_SIMPLE or zonemd.hash_algorithm not in _HASHERS:
        return (
            ZonemdStatus.UNSUPPORTED_ALGORITHM,
            f"scheme={zonemd.scheme} alg={zonemd.hash_algorithm}",
        )
    actual = compute_zone_digest(records, apex, zonemd.hash_algorithm)
    if actual != zonemd.digest:
        return (
            ZonemdStatus.MISMATCH,
            f"computed {actual.hex()[:16]}.. != published {zonemd.digest.hex()[:16]}..",
        )
    return ZonemdStatus.VALID, "digest verified"
