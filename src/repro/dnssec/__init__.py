"""DNSSEC machinery: keys, RRSIG sign/validate, NSEC chains and the
RFC 8976 ZONEMD zone digest whose roll-out the paper's RQ3 studies.

Cryptographic substitution (see DESIGN.md): without an RSA/ECDSA library
offline, signatures are HMAC-SHA256 keyed by the DNSKEY public-key field.
Every *structural* part of DNSSEC — canonical forms, key tags,
inception/expiration windows, digest comparison, the full error taxonomy —
is implemented per-RFC, so the validation pipeline behaves exactly like
``ldns-verify-zone`` against real zones: any flipped bit, stale signature
or skewed clock produces the same class of validation error.
"""

from repro.dnssec.digestcache import (
    ZoneAnalysis,
    ZoneValidationCache,
    records_fingerprint,
    shared_cache,
    zone_fingerprint,
)
from repro.dnssec.keys import ZoneKey, KeyPair, generate_keypair
from repro.dnssec.sign import sign_rrset, sign_zone_records
from repro.dnssec.validate import (
    ValidationError,
    ValidationIssue,
    ValidationReport,
    validate_rrset,
    validate_zone,
)
from repro.dnssec.zonemd import (
    compute_zone_digest,
    make_zonemd_record,
    verify_zonemd,
    ZonemdStatus,
)
from repro.dnssec.nsec import build_nsec_chain

__all__ = [
    "ZoneKey",
    "KeyPair",
    "generate_keypair",
    "sign_rrset",
    "sign_zone_records",
    "ValidationError",
    "ValidationIssue",
    "ValidationReport",
    "validate_rrset",
    "validate_zone",
    "compute_zone_digest",
    "make_zonemd_record",
    "verify_zonemd",
    "ZonemdStatus",
    "build_nsec_chain",
    "ZoneAnalysis",
    "ZoneValidationCache",
    "records_fingerprint",
    "shared_cache",
    "zone_fingerprint",
]
