"""Content-keyed memoisation of zone validation work.

Campaign-scale validation touches the same handful of distinct zone
versions over and over: the Table 2 audit validates every transfer
observation, the RFC 8806 local-root manager re-validates on every
refresh, and AXFR serving replays the same zone copy for every
transfer.  The expensive parts — RRSIG public-key verification and the
ZONEMD digest — depend only on the zone *content*; only the signature
validity-window comparison depends on the validation time.

:class:`ZoneValidationCache` therefore runs the cryptography once per
distinct zone content (keyed by :func:`zone_fingerprint`, a hash over
the records' canonical wire forms) and replays the exact
:func:`repro.dnssec.validate.validate_zone` report for any validation
time from the cached per-signature facts.  The fingerprint is also what
:meth:`repro.rss.server.RootServerDeployment.axfr_of` keys its transfer
memo by, so AXFR serving and validation share one identity notion for
"the same zone version".
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.dns.constants import RRType
from repro.dns.name import Name
from repro.dns.rdata import DNSKEY, RRSIG
from repro.dns.records import ResourceRecord, group_rrsets
from repro.dnssec.keys import verify_bytes
from repro.dnssec.validate import (
    ValidationError,
    ValidationIssue,
    ValidationReport,
)
from repro.dnssec.zonemd import ZonemdStatus, verify_zonemd

#: Attribute the fingerprint is memoised under on :class:`~repro.zone.zone.Zone`
#: objects (invalidated by ``Zone.replace_record``).
FINGERPRINT_ATTR = "_content_fingerprint"


def records_fingerprint(records: Iterable[ResourceRecord]) -> bytes:
    """Content hash of a record sequence (canonical wire forms, in order).

    Order-sensitive on purpose: validation reports list issues in RRset
    first-seen order, so two copies only share a cache entry when their
    reports would be identical too.
    """
    hasher = hashlib.sha256()
    for rec in records:
        hasher.update(rec.canonical_wire())
    return hasher.digest()


def zone_fingerprint(zone) -> bytes:
    """The (memoised) content fingerprint of a zone copy."""
    cached = zone.__dict__.get(FINGERPRINT_ATTR)
    if cached is None:
        cached = records_fingerprint(zone.records)
        zone.__dict__[FINGERPRINT_ATTR] = cached
    return cached


@dataclass(frozen=True)
class _SignatureFact:
    """The time-independent outcome of checking one covering RRSIG."""

    key_tag: int
    inception: int
    expiration: int
    known_key: bool
    digest_ok: bool


@dataclass(frozen=True)
class _RRsetFact:
    """One validated RRset with its covering-signature facts."""

    name: Name
    rrtype: int
    signatures: Tuple[_SignatureFact, ...]


@dataclass(frozen=True)
class ZoneAnalysis:
    """Everything validation needs about one zone content, time-free.

    :meth:`report_at` reconstructs ``validate_zone``'s report for any
    validation time without re-running signature cryptography.
    """

    fingerprint: bytes
    apex: Name
    has_dnskey: bool
    rrset_facts: Tuple[_RRsetFact, ...]
    #: ``verify_zonemd`` outcome: (status, human-readable detail).
    zonemd: Tuple[ZonemdStatus, str]
    #: (max inception, min expiration) over all RRSIGs; (0, 0) when unsigned.
    rrsig_envelope: Tuple[int, int]

    def report_at(self, now: int, check_zonemd: bool = True) -> ValidationReport:
        """The ``validate_zone(records, apex, now, check_zonemd)`` report."""
        report = ValidationReport(validated_at=now)
        if not self.has_dnskey:
            report.issues.append(
                ValidationIssue(
                    ValidationError.NO_DNSKEY, self.apex, int(RRType.DNSKEY)
                )
            )
            return report
        for fact in self.rrset_facts:
            report.rrsets_checked += 1
            report.signatures_checked += 1
            if not fact.signatures:
                report.issues.append(
                    ValidationIssue(ValidationError.NO_RRSIG, fact.name, fact.rrtype)
                )
                continue
            failures: List[ValidationIssue] = []
            validated = False
            for sig in fact.signatures:
                if not sig.known_key:
                    error = ValidationError.UNKNOWN_KEY_TAG
                elif now < sig.inception:
                    error = ValidationError.SIG_NOT_INCEPTED
                elif now > sig.expiration:
                    error = ValidationError.SIG_EXPIRED
                elif not sig.digest_ok:
                    error = ValidationError.BOGUS_SIGNATURE
                else:
                    validated = True
                    break
                failures.append(
                    ValidationIssue(
                        error,
                        fact.name,
                        fact.rrtype,
                        detail=f"key_tag={sig.key_tag} window=[{sig.inception},{sig.expiration}]",
                    )
                )
            if not validated:
                report.issues.extend(failures)
        if check_zonemd and self.zonemd[0] is ZonemdStatus.MISMATCH:
            report.issues.append(
                ValidationIssue(
                    ValidationError.BOGUS_SIGNATURE,
                    self.apex,
                    int(RRType.ZONEMD),
                    detail=f"ZONEMD {self.zonemd[1]}",
                )
            )
        return report


def _analyse(
    records: List[ResourceRecord], apex: Name, fingerprint: bytes
) -> ZoneAnalysis:
    """Run the expensive, time-independent validation work once."""
    rrsets = group_rrsets(records)
    rrsigs = [r for r in records if r.rrtype == RRType.RRSIG]
    dnskeys: Dict[int, DNSKEY] = {}
    for rrset in rrsets:
        if rrset.name == apex and rrset.rrtype == RRType.DNSKEY:
            for rec in rrset:
                assert isinstance(rec.rdata, DNSKEY)
                dnskeys[rec.rdata.key_tag()] = rec.rdata

    inceptions: List[int] = []
    expirations: List[int] = []
    for rec in rrsigs:
        if isinstance(rec.rdata, RRSIG):
            inceptions.append(rec.rdata.inception)
            expirations.append(rec.rdata.expiration)
    envelope = (max(inceptions), min(expirations)) if inceptions else (0, 0)

    facts: List[_RRsetFact] = []
    if dnskeys:
        for rrset in rrsets:
            if rrset.rrtype == RRType.RRSIG:
                continue
            is_apex = rrset.name == apex
            if not is_apex and rrset.rrtype in (RRType.NS, RRType.A, RRType.AAAA):
                continue  # delegations and glue are unsigned by design
            covering = [
                r.rdata
                for r in rrsigs
                if isinstance(r.rdata, RRSIG)
                and r.name == rrset.name
                and r.rdata.type_covered == int(rrset.rrtype)
            ]
            sig_facts = []
            for rrsig in covering:
                known = rrsig.key_tag in dnskeys
                digest_ok = known and verify_bytes(
                    dnskeys[rrsig.key_tag],
                    rrsig.signed_data_prefix()
                    + rrset.canonical_wire(rrsig.original_ttl),
                    rrsig.signature,
                )
                sig_facts.append(
                    _SignatureFact(
                        key_tag=rrsig.key_tag,
                        inception=rrsig.inception,
                        expiration=rrsig.expiration,
                        known_key=known,
                        digest_ok=digest_ok,
                    )
                )
            facts.append(
                _RRsetFact(rrset.name, int(rrset.rrtype), tuple(sig_facts))
            )

    return ZoneAnalysis(
        fingerprint=fingerprint,
        apex=apex,
        has_dnskey=bool(dnskeys),
        rrset_facts=tuple(facts),
        zonemd=verify_zonemd(records, apex),
        rrsig_envelope=envelope,
    )


class ZoneValidationCache:
    """Fingerprint-keyed cache of :class:`ZoneAnalysis` objects."""

    def __init__(self) -> None:
        self._analyses: Dict[Tuple[bytes, Name], ZoneAnalysis] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._analyses)

    def analyse(
        self,
        records: Iterable[ResourceRecord],
        apex: Name,
        fingerprint: Optional[bytes] = None,
    ) -> ZoneAnalysis:
        """The (cached) analysis of one record sequence."""
        records = list(records)
        if fingerprint is None:
            fingerprint = records_fingerprint(records)
        key = (fingerprint, apex)
        analysis = self._analyses.get(key)
        if analysis is None:
            self.misses += 1
            analysis = _analyse(records, apex, fingerprint)
            self._analyses[key] = analysis
        else:
            self.hits += 1
        return analysis

    def analyse_zone(self, zone, apex: Name) -> ZoneAnalysis:
        """The (cached) analysis of a zone copy, via its fingerprint."""
        return self.analyse(zone.records, apex, zone_fingerprint(zone))

    def clear(self) -> None:
        self._analyses.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide cache: analyses are pure functions of zone content, so
#: one instance serves the audit, local-root refresh loops and any tool
#: validating the same campaign's zone versions.
_SHARED = ZoneValidationCache()


def shared_cache() -> ZoneValidationCache:
    """The process-wide :class:`ZoneValidationCache`."""
    return _SHARED
