"""DNSSEC key material.

A :class:`KeyPair` bundles the DNSKEY record data with the signing secret.
The emulated primitive is symmetric (HMAC-SHA256 keyed by the *public* key
field) so the validator needs nothing beyond the DNSKEY RRset — exactly
the information a real validator has.  The trade-off (forgeability) is
irrelevant here: the study measures *integrity failures*, not adversaries.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from repro.dns.constants import (
    DNSKEY_FLAG_SEP,
    DNSKEY_FLAG_ZONE,
    DNSSEC_ALG_RSASHA256,
)
from repro.dns.rdata import DNSKEY


@dataclass(frozen=True)
class ZoneKey:
    """A DNSKEY plus its role (KSK/ZSK)."""

    dnskey: DNSKEY
    is_ksk: bool

    @property
    def key_tag(self) -> int:
        return self.dnskey.key_tag()


@dataclass(frozen=True)
class KeyPair:
    """DNSKEY record data together with the signing side.

    ``public_key`` doubles as the HMAC key, which is what makes signatures
    verifiable from the DNSKEY RRset alone.
    """

    zone_key: ZoneKey

    @property
    def dnskey(self) -> DNSKEY:
        return self.zone_key.dnskey

    @property
    def key_tag(self) -> int:
        return self.zone_key.key_tag

    def sign_bytes(self, data: bytes) -> bytes:
        """Produce the emulated signature over *data*."""
        return hmac.new(self.dnskey.public_key, data, hashlib.sha256).digest()


def verify_bytes(dnskey: DNSKEY, data: bytes, signature: bytes) -> bool:
    """Check an emulated signature against a DNSKEY."""
    expected = hmac.new(dnskey.public_key, data, hashlib.sha256).digest()
    return hmac.compare_digest(expected, signature)


def generate_keypair(seed: bytes, is_ksk: bool, algorithm: int = DNSSEC_ALG_RSASHA256) -> KeyPair:
    """Deterministically derive a key pair from *seed*.

    Determinism keeps the whole simulated root zone byte-reproducible
    across runs with the same study seed.
    """
    material = hashlib.sha256(b"dnskey:" + seed).digest()
    flags = DNSKEY_FLAG_ZONE | (DNSKEY_FLAG_SEP if is_ksk else 0)
    dnskey = DNSKEY(flags=flags, protocol=3, algorithm=algorithm, public_key=material)
    return KeyPair(zone_key=ZoneKey(dnskey=dnskey, is_ksk=is_ksk))
