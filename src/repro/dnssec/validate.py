"""Full zone validation, mirroring the paper's use of ``ldnsutils``.

The paper (§7) validates every obtained zone file by "checking ZONEMD and
all RRSIG records against the root DNSKEYs", at both the first and last
observation timestamps (signatures are time-nonced, so validation time
matters — two VPs with skewed clocks produced spurious errors).

The error taxonomy matches Table 2:

* ``SIG_NOT_INCEPTED`` — validation time before the RRSIG inception,
* ``SIG_EXPIRED``      — validation time after the RRSIG expiration,
* ``BOGUS_SIGNATURE``  — digest mismatch (e.g. a bitflipped record),
* plus structural errors (missing DNSKEY, unknown key tag, no RRSIG).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.dns.constants import RRType
from repro.dns.name import Name
from repro.dns.rdata import DNSKEY, RRSIG
from repro.dns.records import ResourceRecord, RRset, group_rrsets
from repro.dnssec.keys import verify_bytes


class ValidationError(enum.Enum):
    """Why an RRset (or zone) failed validation."""

    SIG_NOT_INCEPTED = "signature not yet incepted"
    SIG_EXPIRED = "signature expired"
    BOGUS_SIGNATURE = "bogus signature"
    NO_RRSIG = "RRset has no covering RRSIG"
    NO_DNSKEY = "no DNSKEY RRset at apex"
    UNKNOWN_KEY_TAG = "RRSIG references unknown key tag"


@dataclass(frozen=True)
class ValidationIssue:
    """One validation failure, attached to the offending RRset."""

    error: ValidationError
    name: Name
    rrtype: int
    detail: str = ""


@dataclass
class ValidationReport:
    """Outcome of validating one zone copy at one point in time."""

    validated_at: int
    issues: List[ValidationIssue] = field(default_factory=list)
    rrsets_checked: int = 0
    signatures_checked: int = 0

    @property
    def valid(self) -> bool:
        return not self.issues

    def errors_of(self, error: ValidationError) -> List[ValidationIssue]:
        return [i for i in self.issues if i.error is error]


def _classify_signature(
    rrsig: RRSIG,
    rrset: RRset,
    keys: Dict[int, DNSKEY],
    now: int,
) -> Optional[ValidationError]:
    """Validate one RRSIG over one RRset; None means good."""
    if rrsig.key_tag not in keys:
        return ValidationError.UNKNOWN_KEY_TAG
    # Time window first: ldns reports temporal errors even when the digest
    # would also mismatch, and the paper's Table 2 separates these classes.
    if now < rrsig.inception:
        return ValidationError.SIG_NOT_INCEPTED
    if now > rrsig.expiration:
        return ValidationError.SIG_EXPIRED
    signed_data = rrsig.signed_data_prefix() + rrset.canonical_wire(rrsig.original_ttl)
    if not verify_bytes(keys[rrsig.key_tag], signed_data, rrsig.signature):
        return ValidationError.BOGUS_SIGNATURE
    return None


def validate_rrset(
    rrset: RRset,
    rrsigs: Iterable[ResourceRecord],
    keys: Dict[int, DNSKEY],
    now: int,
) -> List[ValidationIssue]:
    """Validate an RRset against its covering RRSIGs.

    The RRset is good if *any* covering signature verifies; issues from
    the failing ones are only reported when none verifies (matching
    validator semantics where multiple ZSKs may overlap during rolls).
    """
    covering = [
        r.rdata
        for r in rrsigs
        if isinstance(r.rdata, RRSIG)
        and r.name == rrset.name
        and r.rdata.type_covered == int(rrset.rrtype)
    ]
    if not covering:
        return [
            ValidationIssue(
                ValidationError.NO_RRSIG, rrset.name, int(rrset.rrtype)
            )
        ]
    failures: List[ValidationIssue] = []
    for rrsig in covering:
        error = _classify_signature(rrsig, rrset, keys, now)
        if error is None:
            return []
        failures.append(
            ValidationIssue(
                error,
                rrset.name,
                int(rrset.rrtype),
                detail=f"key_tag={rrsig.key_tag} window=[{rrsig.inception},{rrsig.expiration}]",
            )
        )
    return failures


def validate_zone(
    records: Iterable[ResourceRecord],
    apex: Name,
    now: int,
    check_zonemd: bool = True,
) -> ValidationReport:
    """Fully validate a zone copy (all RRSIGs + optional ZONEMD) at *now*.

    This is the ``ldns-verify-zone``-equivalent entry point used by the
    ZONEMD audit (analysis for Table 2).
    """
    # Local import: zonemd depends on this module's report types.
    from repro.dnssec.zonemd import verify_zonemd, ZonemdStatus

    records = list(records)
    report = ValidationReport(validated_at=now)

    rrsets = group_rrsets(records)
    rrsigs = [r for r in records if r.rrtype == RRType.RRSIG]
    dnskeys: Dict[int, DNSKEY] = {}
    for rrset in rrsets:
        if rrset.name == apex and rrset.rrtype == RRType.DNSKEY:
            for rec in rrset:
                assert isinstance(rec.rdata, DNSKEY)
                dnskeys[rec.rdata.key_tag()] = rec.rdata
    if not dnskeys:
        report.issues.append(
            ValidationIssue(ValidationError.NO_DNSKEY, apex, int(RRType.DNSKEY))
        )
        return report

    for rrset in rrsets:
        if rrset.rrtype == RRType.RRSIG:
            continue
        is_apex = rrset.name == apex
        if not is_apex and rrset.rrtype in (RRType.NS, RRType.A, RRType.AAAA):
            # Delegations and glue are unsigned by design.
            continue
        report.rrsets_checked += 1
        issues = validate_rrset(rrset, rrsigs, dnskeys, now)
        report.signatures_checked += 1
        report.issues.extend(issues)

    if check_zonemd:
        status, detail = verify_zonemd(records, apex)
        if status is ZonemdStatus.MISMATCH:
            report.issues.append(
                ValidationIssue(
                    ValidationError.BOGUS_SIGNATURE,
                    apex,
                    int(RRType.ZONEMD),
                    detail=f"ZONEMD {detail}",
                )
            )
        # ABSENT and UNSUPPORTED_ALGORITHM are non-errors per RFC 8976
        # §4 (verification "inconclusive") — exactly the state of the root
        # zone before 2023-12-06.
    return report
