"""NSEC chain construction (RFC 4034 §4).

The root zone carries a complete NSEC chain; the paper's Figure 10 bitflip
specifically hit an RRSIG covering an NSEC record of ``world.``, so the
simulated zone needs an authentic chain for the fault-injection experiment
to reproduce that artefact class.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name
from repro.dns.rdata import NSEC
from repro.dns.records import ResourceRecord


def build_nsec_chain(
    records: Iterable[ResourceRecord],
    apex: Name,
    ttl: int = 86400,
) -> List[ResourceRecord]:
    """Build the NSEC records linking every owner name in canonical order.

    Each NSEC lists the types present at its owner (plus NSEC and RRSIG,
    which will exist after signing), and points to the canonically next
    name; the last wraps to the apex.
    """
    types_at: Dict[Name, Set[int]] = {}
    for rec in records:
        types_at.setdefault(rec.name, set()).add(int(rec.rrtype))
    if apex not in types_at:
        raise ValueError("zone records lack the apex")

    ordered = sorted(types_at.keys(), key=lambda n: n.canonical_key())
    chain: List[ResourceRecord] = []
    for i, owner in enumerate(ordered):
        next_name = ordered[(i + 1) % len(ordered)]
        present: Tuple[int, ...] = tuple(
            sorted(types_at[owner] | {int(RRType.NSEC), int(RRType.RRSIG)})
        )
        rdata = NSEC(next_name=next_name, types=present)
        chain.append(ResourceRecord(owner, RRType.NSEC, RRClass.IN, ttl, rdata))
    return chain


def verify_nsec_chain(records: Iterable[ResourceRecord], apex: Name) -> List[str]:
    """Check chain closure; returns a list of problems (empty if sound)."""
    nsecs = [
        r for r in records if r.rrtype == RRType.NSEC
    ]
    problems: List[str] = []
    if not nsecs:
        return ["zone has no NSEC records"]
    owners = sorted((r.name for r in nsecs), key=lambda n: n.canonical_key())
    by_owner = {r.name: r for r in nsecs}
    if apex not in by_owner:
        problems.append("no NSEC at apex")
    for i, owner in enumerate(owners):
        expected_next = owners[(i + 1) % len(owners)]
        rdata = by_owner[owner].rdata
        assert isinstance(rdata, NSEC)
        if rdata.next_name != expected_next:
            problems.append(
                f"NSEC at {owner.to_text()} points to "
                f"{rdata.next_name.to_text()}, expected {expected_next.to_text()}"
            )
    return problems
