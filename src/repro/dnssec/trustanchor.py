"""KSK rollover machinery: the schedule and an RFC 5011 tracker.

The paper's related work (Mueller et al.) analysed the root's first KSK
rollover; this module makes rollovers a first-class event the simulated
zone can undergo, plus the client side: RFC 5011 "automated updates of
trust anchors" — new SEP keys are trusted only after an add-hold-down
period of continuous observation, and revoked keys are dropped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.dns.constants import DNSKEY_FLAG_SEP
from repro.dns.rdata import DNSKEY
from repro.util.timeutil import DAY, Timestamp

#: The REVOKE flag bit (RFC 5011 §2.1).
DNSKEY_FLAG_REVOKE = 0x0080

#: RFC 5011 §2.4.1: 30 days add hold-down.
ADD_HOLD_DOWN_S = 30 * DAY


@dataclass(frozen=True)
class KskRolloverSchedule:
    """The phases of a root KSK rollover (2017-18 style).

    * ``publish_ts``  — the new KSK appears in the DNSKEY RRset,
    * ``swap_ts``     — the new KSK starts signing the DNSKEY RRset,
    * ``revoke_ts``   — the old KSK is published with the REVOKE bit,
    * ``remove_ts``   — the old KSK disappears.
    """

    publish_ts: Timestamp
    swap_ts: Timestamp
    revoke_ts: Timestamp
    remove_ts: Timestamp

    def __post_init__(self) -> None:
        stamps = (self.publish_ts, self.swap_ts, self.revoke_ts, self.remove_ts)
        if list(stamps) != sorted(stamps) or len(set(stamps)) != 4:
            raise ValueError("rollover phases must be strictly increasing")

    def phase(self, ts: Timestamp) -> str:
        """The rollover phase at *ts*."""
        if ts < self.publish_ts:
            return "pre"
        if ts < self.swap_ts:
            return "published"
        if ts < self.revoke_ts:
            return "swapped"
        if ts < self.remove_ts:
            return "revoked"
        return "done"


def revoked(key: DNSKEY) -> DNSKEY:
    """The key with its REVOKE bit set (key tag changes, per RFC 5011)."""
    return DNSKEY(
        flags=key.flags | DNSKEY_FLAG_REVOKE,
        protocol=key.protocol,
        algorithm=key.algorithm,
        public_key=key.public_key,
    )


def is_revoked(key: DNSKEY) -> bool:
    return bool(key.flags & DNSKEY_FLAG_REVOKE)


class AnchorState(enum.Enum):
    """RFC 5011 key states (simplified to the observable ones)."""

    PENDING = "AddPend: seen, hold-down running"
    TRUSTED = "Valid: usable trust anchor"
    REVOKED = "Revoked: permanently distrusted"


@dataclass
class _TrackedKey:
    state: AnchorState
    first_seen: Timestamp
    last_seen: Timestamp


class TrustAnchorTracker:
    """An RFC 5011 validator's view of the root's SEP keys.

    Feed it the DNSKEY RRset each time the resolver checks (at least
    every ~half hold-down in practice); query :meth:`trusted_tags` for
    the current anchor set.
    """

    def __init__(self, initial_anchor: DNSKEY, bootstrap_ts: Timestamp = 0) -> None:
        if not initial_anchor.is_sep():
            raise ValueError("trust anchor must be a SEP key")
        self._keys: Dict[int, _TrackedKey] = {
            initial_anchor.key_tag(): _TrackedKey(
                state=AnchorState.TRUSTED,
                first_seen=bootstrap_ts,
                last_seen=bootstrap_ts,
            )
        }
        self._key_material: Dict[int, DNSKEY] = {
            initial_anchor.key_tag(): initial_anchor
        }

    def observe(self, dnskeys: List[DNSKEY], now: Timestamp) -> None:
        """Process one observation of the apex DNSKEY RRset."""
        seen_tags: Set[int] = set()
        for key in dnskeys:
            if not key.is_sep():
                continue
            tag = key.key_tag()
            seen_tags.add(tag)
            tracked = self._keys.get(tag)
            if is_revoked(key):
                # A revoked key's tag differs from its unrevoked tag;
                # match on key material instead.
                base_tag = self._match_unrevoked(key)
                if base_tag is not None:
                    self._keys[base_tag].state = AnchorState.REVOKED
                    self._keys[base_tag].last_seen = now
                continue
            if tracked is None:
                self._keys[tag] = _TrackedKey(
                    state=AnchorState.PENDING, first_seen=now, last_seen=now
                )
                self._key_material[tag] = key
                continue
            tracked.last_seen = now
            if (
                tracked.state is AnchorState.PENDING
                and now - tracked.first_seen >= ADD_HOLD_DOWN_S
            ):
                tracked.state = AnchorState.TRUSTED

    def _match_unrevoked(self, revoked_key: DNSKEY) -> Optional[int]:
        for tag, key in self._key_material.items():
            if key.public_key == revoked_key.public_key:
                return tag
        return None

    # -- queries --------------------------------------------------------------------

    def trusted_tags(self) -> Set[int]:
        return {
            tag
            for tag, tracked in self._keys.items()
            if tracked.state is AnchorState.TRUSTED
        }

    def state_of(self, key_tag: int) -> Optional[AnchorState]:
        tracked = self._keys.get(key_tag)
        return None if tracked is None else tracked.state

    def can_validate(self, signing_tag: int) -> bool:
        """Would this validator accept a DNSKEY RRset signed by
        *signing_tag*?  The would-break-the-Internet question of the
        2018 rollover."""
        return signing_tag in self.trusted_tags()
