"""DNS protocol constants (RFC 1035 and successors).

Values are the IANA-assigned numbers so wire encodings are authentic.
"""

from __future__ import annotations

import enum


class RRType(enum.IntEnum):
    """Resource record types used by the study's measurement suite."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    OPT = 41
    DS = 43
    RRSIG = 46
    NSEC = 47
    DNSKEY = 48
    ZONEMD = 63
    AXFR = 252
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRType":
        """Parse a type mnemonic (case-insensitive)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown RR type: {text!r}") from None


class RRClass(enum.IntEnum):
    """Record classes; CHAOS is used for server-identity queries."""

    IN = 1
    CH = 3
    ANY = 255

    @classmethod
    def from_text(cls, text: str) -> "RRClass":
        """Parse a class mnemonic (case-insensitive)."""
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown RR class: {text!r}") from None


class Opcode(enum.IntEnum):
    """Message opcodes."""

    QUERY = 0
    NOTIFY = 4
    UPDATE = 5


class Rcode(enum.IntEnum):
    """Response codes."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5


#: ZONEMD scheme: SIMPLE (RFC 8976 §2.2.1).
ZONEMD_SCHEME_SIMPLE = 1

#: ZONEMD hash algorithms (RFC 8976 §2.2.2 and the private-use range the
#: root zone used during the non-validatable roll-out phase).
ZONEMD_ALG_SHA384 = 1
ZONEMD_ALG_SHA512 = 2
ZONEMD_ALG_PRIVATE = 240  # private-use; deployed 2023-09-13 .. 2023-12-06

#: DNSKEY flags.
DNSKEY_FLAG_ZONE = 0x0100
DNSKEY_FLAG_SEP = 0x0001  # KSK marker

#: DNSSEC algorithm number we emulate (RSASHA256); see DESIGN.md for the
#: HMAC-based substitution of the public-key primitive.
DNSSEC_ALG_RSASHA256 = 8

#: Standard DNS port.
DNS_PORT = 53
