"""DNS name compression (RFC 1035 §4.1.4) — the writer side.

The decoder in :mod:`repro.dns.name` always understood compression
pointers; this module implements the *encoding* side: a compression
context that replaces name suffixes already emitted in the message with
2-octet pointers.  Root zone AXFR payloads compress dramatically (every
owner shares the root suffix, every NS target shares ``root-servers.net``
or ``nic.<tld>``), which is what lets real servers pack thousands of
records per message.
"""

from __future__ import annotations

import struct
from typing import Dict, Tuple

from repro.dns.name import Name

#: Pointers are 14-bit: offsets beyond this cannot be referenced.
MAX_POINTER_OFFSET = 0x3FFF


class CompressionContext:
    """Tracks name suffixes already written into a message."""

    def __init__(self) -> None:
        #: lowercased label tuple -> offset of its first occurrence
        self._offsets: Dict[Tuple[bytes, ...], int] = {}

    def write_name(self, name: Name, out: bytearray) -> None:
        """Append *name* to *out*, compressed against prior content.

        Compression is case-insensitive on matching (per RFC 1035
        §4.1.4) but the emitted labels keep their original case.
        """
        labels = name.labels
        lowered = tuple(l.lower() for l in labels)
        for i in range(len(labels)):
            suffix = lowered[i:]
            pointer = self._offsets.get(suffix)
            if pointer is not None:
                out.extend(struct.pack("!H", 0xC000 | pointer))
                return
            offset = len(out)
            if offset <= MAX_POINTER_OFFSET:
                self._offsets[suffix] = offset
            out.append(len(labels[i]))
            out.extend(labels[i])
        out.append(0)


def compress_names(names: list, initial: bytes = b"") -> bytes:
    """Encode a sequence of names into one buffer with compression.

    *initial* is prefix content (e.g. a message header) that offsets are
    measured against.  Convenience for tests and size accounting.
    """
    out = bytearray(initial)
    context = CompressionContext()
    for name in names:
        context.write_name(name, out)
    return bytes(out)


def compression_ratio(names: list) -> float:
    """Bytes saved by compression vs uncompressed encoding (0..1)."""
    uncompressed = sum(len(n.to_wire()) for n in names)
    if uncompressed == 0:
        return 0.0
    compressed = len(compress_names(names))
    return 1.0 - compressed / uncompressed
