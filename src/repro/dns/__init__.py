"""A from-scratch DNS implementation: names, resource records, wire-format
messages, and the canonical forms needed by DNSSEC and ZONEMD.

This substrate exists because the paper's measurement and validation
pipeline operates on real DNS artefacts — dig-style queries, AXFR streams,
RRSIG/ZONEMD records.  Only the subset of the protocol the study exercises
is implemented, but that subset is implemented per-RFC (1035, 4034, 8976).
"""

from repro.dns.constants import RRClass, RRType, Rcode, Opcode
from repro.dns.name import Name, ROOT_NAME
from repro.dns.records import ResourceRecord, RRset
from repro.dns.message import Header, Message, Question
from repro.dns.edns import EdnsOptions, add_edns, get_edns, wants_dnssec
from repro.dns.compress import CompressionContext, compress_names
from repro.dns.tcpframe import deframe_stream, frame_stream
from repro.dns import rdata

__all__ = [
    "RRClass",
    "RRType",
    "Rcode",
    "Opcode",
    "Name",
    "ROOT_NAME",
    "ResourceRecord",
    "RRset",
    "Header",
    "Message",
    "Question",
    "EdnsOptions",
    "add_edns",
    "get_edns",
    "wants_dnssec",
    "CompressionContext",
    "compress_names",
    "frame_stream",
    "deframe_stream",
    "rdata",
]
