"""DNS-over-TCP message framing (RFC 1035 §4.2.2).

Zone transfers run over TCP, where each DNS message is prefixed with a
two-octet length.  These helpers frame and de-frame message streams —
the byte-level representation of the paper's 78 M AXFR payloads.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.dns.message import Message

MAX_FRAME = 0xFFFF


class FramingError(ValueError):
    """Malformed TCP DNS stream."""


def frame_message(wire: bytes) -> bytes:
    """Prefix one wire-format message with its 16-bit length."""
    if len(wire) > MAX_FRAME:
        raise FramingError(f"message exceeds 65535 octets ({len(wire)})")
    return len(wire).to_bytes(2, "big") + wire


def frame_stream(messages: Iterable[Message]) -> bytes:
    """Serialise a message sequence into one TCP payload."""
    out = bytearray()
    for message in messages:
        out.extend(frame_message(message.to_wire()))
    return bytes(out)


def iter_frames(payload: bytes) -> Iterator[bytes]:
    """Yield each message's wire bytes from a TCP payload."""
    offset = 0
    while offset < len(payload):
        if offset + 2 > len(payload):
            raise FramingError("truncated length prefix")
        length = int.from_bytes(payload[offset : offset + 2], "big")
        offset += 2
        if offset + length > len(payload):
            raise FramingError(
                f"frame of {length} octets exceeds remaining payload"
            )
        yield payload[offset : offset + length]
        offset += length


def deframe_stream(payload: bytes) -> List[Message]:
    """Parse a full TCP payload back into messages."""
    return [Message.from_wire(wire) for wire in iter_frames(payload)]


def axfr_payload_size(messages: Iterable[Message]) -> Tuple[int, int]:
    """(frames, total octets) of an AXFR response stream — the quantity
    the paper's 0.5 TB compressed dataset is made of."""
    frames = 0
    octets = 0
    for message in messages:
        frames += 1
        octets += 2 + len(message.to_wire())
    return frames, octets
