"""RDATA types used by the root zone and the measurement suite.

Each class provides wire encode/decode, presentation-format text, and the
DNSSEC *canonical* wire form (RFC 4034 §6.2: embedded names lowercased and
never compressed) used by RRSIG and ZONEMD digest computation.
"""

from __future__ import annotations

import base64
import ipaddress
import struct
from dataclasses import dataclass, field
from typing import ClassVar, Dict, List, Tuple, Type

from repro.dns.constants import RRType
from repro.dns.name import Name


class RdataError(ValueError):
    """Malformed RDATA."""


class Rdata:
    """Base class for typed RDATA; subclasses register by RR type."""

    rrtype: ClassVar[RRType]
    _registry: ClassVar[Dict[int, Type["Rdata"]]] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if hasattr(cls, "rrtype"):
            Rdata._registry[int(cls.rrtype)] = cls

    # subclasses implement these -------------------------------------------------
    def to_wire(self) -> bytes:
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "Rdata":
        raise NotImplementedError

    # shared ----------------------------------------------------------------------
    def canonical_wire(self) -> bytes:
        """RFC 4034 §6.2 canonical RDATA; overridden where names embed."""
        return self.to_wire()

    @staticmethod
    def parse(rrtype: int, wire: bytes, offset: int, rdlength: int) -> "Rdata":
        """Decode RDATA of *rrtype*; unknown types become :class:`Generic`."""
        cls = Rdata._registry.get(int(rrtype))
        if cls is None:
            return Generic.decode_as(rrtype, wire, offset, rdlength)
        return cls.decode(wire, offset, rdlength)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Rdata):
            return NotImplemented
        return (
            type(self) is type(other)
            and self.canonical_wire() == other.canonical_wire()
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.canonical_wire()))


@dataclass(frozen=True, eq=False)
class Generic(Rdata):
    """Opaque RDATA for types we do not interpret (RFC 3597 style)."""

    type_value: int
    data: bytes

    def to_wire(self) -> bytes:
        return self.data

    def to_text(self) -> str:
        return f"\\# {len(self.data)} {self.data.hex()}"

    @classmethod
    def decode_as(cls, rrtype: int, wire: bytes, offset: int, rdlength: int) -> "Generic":
        return cls(type_value=int(rrtype), data=wire[offset : offset + rdlength])

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "Rdata":
        raise RdataError("Generic.decode requires a type; use decode_as")


@dataclass(frozen=True, eq=False)
class A(Rdata):
    """IPv4 address record."""

    rrtype: ClassVar[RRType] = RRType.A
    address: str

    def __post_init__(self) -> None:
        ipaddress.IPv4Address(self.address)  # validates

    def to_wire(self) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    def to_text(self) -> str:
        return self.address

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "A":
        if rdlength != 4:
            raise RdataError(f"A rdata must be 4 bytes, got {rdlength}")
        return cls(str(ipaddress.IPv4Address(wire[offset : offset + 4])))


@dataclass(frozen=True, eq=False)
class AAAA(Rdata):
    """IPv6 address record."""

    rrtype: ClassVar[RRType] = RRType.AAAA
    address: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "address", str(ipaddress.IPv6Address(self.address))
        )

    def to_wire(self) -> bytes:
        return ipaddress.IPv6Address(self.address).packed

    def to_text(self) -> str:
        return self.address

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "AAAA":
        if rdlength != 16:
            raise RdataError(f"AAAA rdata must be 16 bytes, got {rdlength}")
        return cls(str(ipaddress.IPv6Address(wire[offset : offset + 16])))


@dataclass(frozen=True, eq=False)
class NS(Rdata):
    """Delegation name server."""

    rrtype: ClassVar[RRType] = RRType.NS
    target: Name

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def canonical_wire(self) -> bytes:
        return self.target.canonical_wire()

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "NS":
        name, _end = Name.from_wire(wire, offset)
        return cls(name)


@dataclass(frozen=True, eq=False)
class CNAME(Rdata):
    """Canonical name alias."""

    rrtype: ClassVar[RRType] = RRType.CNAME
    target: Name

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def canonical_wire(self) -> bytes:
        return self.target.canonical_wire()

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "CNAME":
        name, _end = Name.from_wire(wire, offset)
        return cls(name)


@dataclass(frozen=True, eq=False)
class PTR(Rdata):
    """Pointer record."""

    rrtype: ClassVar[RRType] = RRType.PTR
    target: Name

    def to_wire(self) -> bytes:
        return self.target.to_wire()

    def canonical_wire(self) -> bytes:
        return self.target.canonical_wire()

    def to_text(self) -> str:
        return self.target.to_text()

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "PTR":
        name, _end = Name.from_wire(wire, offset)
        return cls(name)


@dataclass(frozen=True, eq=False)
class MX(Rdata):
    """Mail exchanger."""

    rrtype: ClassVar[RRType] = RRType.MX
    preference: int
    exchange: Name

    def to_wire(self) -> bytes:
        return struct.pack("!H", self.preference) + self.exchange.to_wire()

    def canonical_wire(self) -> bytes:
        return struct.pack("!H", self.preference) + self.exchange.canonical_wire()

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "MX":
        (pref,) = struct.unpack_from("!H", wire, offset)
        name, _end = Name.from_wire(wire, offset + 2)
        return cls(pref, name)


@dataclass(frozen=True, eq=False)
class SOA(Rdata):
    """Start of authority — carries the zone serial the study tracks."""

    rrtype: ClassVar[RRType] = RRType.SOA
    mname: Name
    rname: Name
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int

    def _tail(self) -> bytes:
        return struct.pack(
            "!IIIII", self.serial, self.refresh, self.retry, self.expire, self.minimum
        )

    def to_wire(self) -> bytes:
        return self.mname.to_wire() + self.rname.to_wire() + self._tail()

    def canonical_wire(self) -> bytes:
        return self.mname.canonical_wire() + self.rname.canonical_wire() + self._tail()

    def to_text(self) -> str:
        return (
            f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
            f"{self.refresh} {self.retry} {self.expire} {self.minimum}"
        )

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "SOA":
        mname, pos = Name.from_wire(wire, offset)
        rname, pos = Name.from_wire(wire, pos)
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", wire, pos)
        return cls(mname, rname, serial, refresh, retry, expire, minimum)


@dataclass(frozen=True, eq=False)
class TXT(Rdata):
    """Text record; used for CHAOS identity answers (hostname.bind etc.)."""

    rrtype: ClassVar[RRType] = RRType.TXT
    strings: Tuple[bytes, ...]

    def __post_init__(self) -> None:
        if not self.strings:
            raise RdataError("TXT needs at least one string")
        for s in self.strings:
            if len(s) > 255:
                raise RdataError("TXT string exceeds 255 octets")

    @classmethod
    def from_string(cls, text: str) -> "TXT":
        """Build from one unicode string (split if > 255 octets)."""
        raw = text.encode("utf-8")
        chunks = tuple(raw[i : i + 255] for i in range(0, len(raw), 255)) or (b"",)
        return cls(strings=chunks)

    def single_text(self) -> str:
        """All strings joined and decoded — convenient for identities."""
        return b"".join(self.strings).decode("utf-8", "replace")

    def to_wire(self) -> bytes:
        out = bytearray()
        for s in self.strings:
            out.append(len(s))
            out.extend(s)
        return bytes(out)

    def to_text(self) -> str:
        return " ".join('"' + s.decode("utf-8", "replace") + '"' for s in self.strings)

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "TXT":
        end = offset + rdlength
        strings: List[bytes] = []
        pos = offset
        while pos < end:
            length = wire[pos]
            pos += 1
            if pos + length > end:
                raise RdataError("truncated TXT string")
            strings.append(wire[pos : pos + length])
            pos += length
        if not strings:
            strings = [b""]
        return cls(tuple(strings))


@dataclass(frozen=True, eq=False)
class DS(Rdata):
    """Delegation signer digest."""

    rrtype: ClassVar[RRType] = RRType.DS
    key_tag: int
    algorithm: int
    digest_type: int
    digest: bytes

    def to_wire(self) -> bytes:
        return (
            struct.pack("!HBB", self.key_tag, self.algorithm, self.digest_type)
            + self.digest
        )

    def to_text(self) -> str:
        return (
            f"{self.key_tag} {self.algorithm} {self.digest_type} "
            f"{self.digest.hex().upper()}"
        )

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "DS":
        key_tag, alg, dtype = struct.unpack_from("!HBB", wire, offset)
        return cls(key_tag, alg, dtype, wire[offset + 4 : offset + rdlength])


@dataclass(frozen=True, eq=False)
class DNSKEY(Rdata):
    """Zone key (RFC 4034 §2)."""

    rrtype: ClassVar[RRType] = RRType.DNSKEY
    flags: int
    protocol: int
    algorithm: int
    public_key: bytes

    def to_wire(self) -> bytes:
        return (
            struct.pack("!HBB", self.flags, self.protocol, self.algorithm)
            + self.public_key
        )

    def to_text(self) -> str:
        b64 = base64.b64encode(self.public_key).decode("ascii")
        return f"{self.flags} {self.protocol} {self.algorithm} {b64}"

    def key_tag(self) -> int:
        """RFC 4034 Appendix B key-tag computation."""
        wire = self.to_wire()
        acc = 0
        for i, byte in enumerate(wire):
            acc += byte << 8 if i % 2 == 0 else byte
        acc += (acc >> 16) & 0xFFFF
        return acc & 0xFFFF

    def is_sep(self) -> bool:
        """True if the SEP (KSK) flag bit is set."""
        return bool(self.flags & 0x0001)

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "DNSKEY":
        flags, protocol, algorithm = struct.unpack_from("!HBB", wire, offset)
        return cls(flags, protocol, algorithm, wire[offset + 4 : offset + rdlength])


@dataclass(frozen=True, eq=False)
class RRSIG(Rdata):
    """Resource record signature (RFC 4034 §3)."""

    rrtype: ClassVar[RRType] = RRType.RRSIG
    type_covered: int
    algorithm: int
    labels: int
    original_ttl: int
    expiration: int
    inception: int
    key_tag: int
    signer: Name
    signature: bytes

    def _head(self) -> bytes:
        return struct.pack(
            "!HBBIIIH",
            self.type_covered,
            self.algorithm,
            self.labels,
            self.original_ttl,
            self.expiration,
            self.inception,
            self.key_tag,
        )

    def to_wire(self) -> bytes:
        return self._head() + self.signer.to_wire() + self.signature

    def canonical_wire(self) -> bytes:
        # RFC 4034 §6.2: the signer name in RRSIG is *not* lowercased when
        # computing digests covering the RRSIG itself, but for our equality
        # semantics we still use lowercase to keep comparisons stable.
        return self._head() + self.signer.canonical_wire() + self.signature

    def signed_data_prefix(self) -> bytes:
        """RDATA with the Signature field removed — the RRSIG_RDATA input
        to signature computation (RFC 4034 §3.1.8.1)."""
        return self._head() + self.signer.canonical_wire()

    def to_text(self) -> str:
        b64 = base64.b64encode(self.signature).decode("ascii")
        covered = RRType(self.type_covered).name if self.type_covered in RRType._value2member_map_ else str(self.type_covered)
        return (
            f"{covered} {self.algorithm} {self.labels} {self.original_ttl} "
            f"{self.expiration} {self.inception} {self.key_tag} "
            f"{self.signer.to_text()} {b64}"
        )

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "RRSIG":
        (covered, alg, labels, ottl, exp, inc, tag) = struct.unpack_from(
            "!HBBIIIH", wire, offset
        )
        signer, pos = Name.from_wire(wire, offset + 18)
        return cls(covered, alg, labels, ottl, exp, inc, tag, signer, wire[pos : offset + rdlength])


def _encode_type_bitmaps(types: Tuple[int, ...]) -> bytes:
    """NSEC type bitmap encoding (RFC 4034 §4.1.2)."""
    windows: Dict[int, bytearray] = {}
    for t in sorted(set(types)):
        window, low = divmod(t, 256)
        bits = windows.setdefault(window, bytearray(32))
        bits[low // 8] |= 0x80 >> (low % 8)
    out = bytearray()
    for window in sorted(windows):
        bits = windows[window]
        # trim trailing zero octets
        length = len(bits)
        while length > 0 and bits[length - 1] == 0:
            length -= 1
        if length == 0:
            continue
        out.append(window)
        out.append(length)
        out.extend(bits[:length])
    return bytes(out)


def _decode_type_bitmaps(data: bytes) -> Tuple[int, ...]:
    types: List[int] = []
    pos = 0
    while pos < len(data):
        if pos + 2 > len(data):
            raise RdataError("truncated NSEC bitmap header")
        window = data[pos]
        length = data[pos + 1]
        if length == 0 or length > 32:
            raise RdataError(f"bad NSEC bitmap length {length}")
        pos += 2
        if pos + length > len(data):
            raise RdataError("truncated NSEC bitmap")
        for i in range(length):
            byte = data[pos + i]
            for bit in range(8):
                if byte & (0x80 >> bit):
                    types.append(window * 256 + i * 8 + bit)
        pos += length
    return tuple(types)


@dataclass(frozen=True, eq=False)
class NSEC(Rdata):
    """Authenticated denial-of-existence chain link (RFC 4034 §4)."""

    rrtype: ClassVar[RRType] = RRType.NSEC
    next_name: Name
    types: Tuple[int, ...] = field(default_factory=tuple)

    def to_wire(self) -> bytes:
        return self.next_name.to_wire() + _encode_type_bitmaps(self.types)

    def canonical_wire(self) -> bytes:
        return self.next_name.canonical_wire() + _encode_type_bitmaps(self.types)

    def to_text(self) -> str:
        mnemonics = []
        for t in sorted(set(self.types)):
            mnemonics.append(
                RRType(t).name if t in RRType._value2member_map_ else f"TYPE{t}"
            )
        return f"{self.next_name.to_text()} {' '.join(mnemonics)}".rstrip()

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "NSEC":
        next_name, pos = Name.from_wire(wire, offset)
        return cls(next_name, _decode_type_bitmaps(wire[pos : offset + rdlength]))


@dataclass(frozen=True, eq=False)
class ZONEMD(Rdata):
    """Zone message digest (RFC 8976) — the record whose roll-out RQ3 studies."""

    rrtype: ClassVar[RRType] = RRType.ZONEMD
    serial: int
    scheme: int
    hash_algorithm: int
    digest: bytes

    def __post_init__(self) -> None:
        if len(self.digest) < 12:
            raise RdataError("ZONEMD digest must be at least 12 octets (RFC 8976 §2.2.3)")

    def to_wire(self) -> bytes:
        return struct.pack("!IBB", self.serial, self.scheme, self.hash_algorithm) + self.digest

    def to_text(self) -> str:
        return f"{self.serial} {self.scheme} {self.hash_algorithm} {self.digest.hex().upper()}"

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "ZONEMD":
        serial, scheme, alg = struct.unpack_from("!IBB", wire, offset)
        return cls(serial, scheme, alg, wire[offset + 6 : offset + rdlength])


@dataclass(frozen=True, eq=False)
class OPT(Rdata):
    """EDNS0 pseudo-record payload (options opaque)."""

    rrtype: ClassVar[RRType] = RRType.OPT
    options: bytes = b""

    def to_wire(self) -> bytes:
        return self.options

    def to_text(self) -> str:
        return f"; EDNS opts={self.options.hex()}"

    @classmethod
    def decode(cls, wire: bytes, offset: int, rdlength: int) -> "OPT":
        return cls(wire[offset : offset + rdlength])
