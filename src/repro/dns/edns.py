"""EDNS(0) — RFC 6891.

The measurement suite runs ``dig +dnssec``, which attaches an OPT
pseudo-record advertising the buffer size and setting the DO bit; the
simulated servers answer with RRSIGs only when DO is set, mirroring real
behaviour.  The OPT record abuses the RR fields: CLASS carries the
requestor's UDP payload size and TTL packs extended RCODE, version and
the flag bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.dns.constants import RRClass, RRType
from repro.dns.message import Message
from repro.dns.name import ROOT_NAME
from repro.dns.rdata import OPT
from repro.dns.records import ResourceRecord

#: DO ("DNSSEC OK") flag bit within the OPT TTL field.
EDNS_FLAG_DO = 0x8000

#: Common advertised payload sizes.
DEFAULT_PAYLOAD_SIZE = 1232  # the DNS-flag-day recommendation
CLASSIC_PAYLOAD_SIZE = 4096


@dataclass(frozen=True)
class EdnsOptions:
    """Parsed view of a message's OPT record."""

    payload_size: int
    version: int
    dnssec_ok: bool
    extended_rcode: int = 0

    def to_record(self) -> ResourceRecord:
        """Encode into the OPT pseudo-record."""
        ttl = (self.extended_rcode & 0xFF) << 24
        ttl |= (self.version & 0xFF) << 16
        if self.dnssec_ok:
            ttl |= EDNS_FLAG_DO
        return ResourceRecord(
            name=ROOT_NAME,
            rrtype=RRType.OPT,
            rrclass=self.payload_size,  # type: ignore[arg-type]
            ttl=ttl,
            rdata=OPT(),
        )

    @classmethod
    def from_record(cls, record: ResourceRecord) -> "EdnsOptions":
        if record.rrtype != RRType.OPT:
            raise ValueError(f"not an OPT record: {record.rrtype}")
        ttl = record.ttl
        return cls(
            payload_size=int(record.rrclass),
            version=(ttl >> 16) & 0xFF,
            dnssec_ok=bool(ttl & EDNS_FLAG_DO),
            extended_rcode=(ttl >> 24) & 0xFF,
        )


def add_edns(
    message: Message,
    payload_size: int = DEFAULT_PAYLOAD_SIZE,
    dnssec_ok: bool = False,
) -> Message:
    """Attach an OPT record (idempotent: replaces an existing one)."""
    strip_edns(message)
    options = EdnsOptions(
        payload_size=payload_size, version=0, dnssec_ok=dnssec_ok
    )
    message.additional.append(options.to_record())
    return message


def get_edns(message: Message) -> Optional[EdnsOptions]:
    """The message's EDNS options, or None for a plain DNS message."""
    for record in message.additional:
        if record.rrtype == RRType.OPT:
            return EdnsOptions.from_record(record)
    return None


def strip_edns(message: Message) -> None:
    """Remove any OPT records from the additional section."""
    message.additional = [
        r for r in message.additional if r.rrtype != RRType.OPT
    ]


def wants_dnssec(message: Message) -> bool:
    """Did the client set the DO bit (``dig +dnssec``)?"""
    options = get_edns(message)
    return options is not None and options.dnssec_ok
