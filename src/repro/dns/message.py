"""DNS messages: header, question, full wire codec.

Good enough to round-trip everything the measurement suite sends and the
simulated root servers answer: ordinary queries, CHAOS identity queries,
and multi-record AXFR response streams.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.dns.constants import Opcode, RRClass, RRType, Rcode
from repro.dns.name import Name
from repro.dns.records import ResourceRecord

#: Header flag bit masks.
FLAG_QR = 0x8000
FLAG_AA = 0x0400
FLAG_TC = 0x0200
FLAG_RD = 0x0100
FLAG_RA = 0x0080
FLAG_AD = 0x0020
FLAG_CD = 0x0010


@dataclass
class Header:
    """The 12-octet DNS message header."""

    msg_id: int = 0
    qr: bool = False
    opcode: Opcode = Opcode.QUERY
    aa: bool = False
    tc: bool = False
    rd: bool = False
    ra: bool = False
    ad: bool = False
    cd: bool = False
    rcode: Rcode = Rcode.NOERROR

    def flags_word(self) -> int:
        word = 0
        if self.qr:
            word |= FLAG_QR
        word |= (int(self.opcode) & 0xF) << 11
        if self.aa:
            word |= FLAG_AA
        if self.tc:
            word |= FLAG_TC
        if self.rd:
            word |= FLAG_RD
        if self.ra:
            word |= FLAG_RA
        if self.ad:
            word |= FLAG_AD
        if self.cd:
            word |= FLAG_CD
        word |= int(self.rcode) & 0xF
        return word

    @classmethod
    def from_flags_word(cls, msg_id: int, word: int) -> "Header":
        return cls(
            msg_id=msg_id,
            qr=bool(word & FLAG_QR),
            opcode=Opcode((word >> 11) & 0xF),
            aa=bool(word & FLAG_AA),
            tc=bool(word & FLAG_TC),
            rd=bool(word & FLAG_RD),
            ra=bool(word & FLAG_RA),
            ad=bool(word & FLAG_AD),
            cd=bool(word & FLAG_CD),
            rcode=Rcode(word & 0xF),
        )


@dataclass(frozen=True)
class Question:
    """One question-section entry."""

    qname: Name
    qtype: RRType
    qclass: RRClass = RRClass.IN

    def to_wire(self) -> bytes:
        return self.qname.to_wire() + struct.pack("!HH", int(self.qtype), int(self.qclass))

    @classmethod
    def from_wire(cls, wire: bytes, offset: int) -> Tuple["Question", int]:
        qname, pos = Name.from_wire(wire, offset)
        qtype, qclass = struct.unpack_from("!HH", wire, pos)
        return cls(qname, RRType(qtype), RRClass(qclass)), pos + 4


@dataclass
class Message:
    """A complete DNS message."""

    header: Header = field(default_factory=Header)
    questions: List[Question] = field(default_factory=list)
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def make_query(
        cls,
        qname: Name,
        qtype: RRType,
        qclass: RRClass = RRClass.IN,
        msg_id: int = 0,
        rd: bool = False,
    ) -> "Message":
        """Build a query message (what ``dig`` sends)."""
        return cls(
            header=Header(msg_id=msg_id, rd=rd),
            questions=[Question(qname, qtype, qclass)],
        )

    def make_response(self, rcode: Rcode = Rcode.NOERROR, aa: bool = True) -> "Message":
        """Skeleton response echoing this query's id and question."""
        return Message(
            header=Header(
                msg_id=self.header.msg_id, qr=True, aa=aa, rd=self.header.rd, rcode=rcode
            ),
            questions=list(self.questions),
        )

    @property
    def question(self) -> Optional[Question]:
        """First question, or None."""
        return self.questions[0] if self.questions else None

    # -- codec ----------------------------------------------------------------

    def to_wire(self) -> bytes:
        """Serialise to wire format (uncompressed names)."""
        out = bytearray()
        out.extend(
            struct.pack(
                "!HHHHHH",
                self.header.msg_id,
                self.header.flags_word(),
                len(self.questions),
                len(self.answers),
                len(self.authority),
                len(self.additional),
            )
        )
        for q in self.questions:
            out.extend(q.to_wire())
        for section in (self.answers, self.authority, self.additional):
            for rec in section:
                out.extend(rec.to_wire())
        return bytes(out)

    @classmethod
    def from_wire(cls, wire: bytes) -> "Message":
        """Parse a complete message from wire format."""
        if len(wire) < 12:
            raise ValueError("message shorter than header")
        msg_id, flags, qd, an, ns, ar = struct.unpack_from("!HHHHHH", wire, 0)
        msg = cls(header=Header.from_flags_word(msg_id, flags))
        pos = 12
        for _ in range(qd):
            q, pos = Question.from_wire(wire, pos)
            msg.questions.append(q)
        for count, section in ((an, msg.answers), (ns, msg.authority), (ar, msg.additional)):
            for _ in range(count):
                rec, pos = ResourceRecord.from_wire(wire, pos)
                section.append(rec)
        if pos != len(wire):
            raise ValueError(f"{len(wire) - pos} trailing octets after message")
        return msg

    # -- convenience ------------------------------------------------------------

    def answer_rrs(self, rrtype: RRType) -> List[ResourceRecord]:
        """Answer-section records of the given type."""
        return [r for r in self.answers if r.rrtype == rrtype]

    def __len__(self) -> int:
        return len(self.to_wire())
