"""Domain names: text <-> label <-> wire forms, canonical ordering.

Implements the pieces of RFC 1035 (labels, wire encoding, compression
pointers on decode) and RFC 4034 §6 (canonical form and canonical ordering)
that DNSSEC signing, ZONEMD digesting and AXFR serialisation depend on.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


class NameError_(ValueError):
    """Malformed domain name."""


def _unescape(text: str) -> List[bytes]:
    """Split presentation-format text into raw labels, handling ``\\.``."""
    labels: List[bytes] = []
    current = bytearray()
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise NameError_(f"dangling escape in {text!r}")
            nxt = text[i + 1]
            if nxt.isdigit():
                if i + 3 >= len(text) or not text[i + 1 : i + 4].isdigit():
                    raise NameError_(f"bad decimal escape in {text!r}")
                current.append(int(text[i + 1 : i + 4]))
                i += 4
            else:
                current.append(ord(nxt))
                i += 2
        elif ch == ".":
            labels.append(bytes(current))
            current = bytearray()
            i += 1
        else:
            current.append(ord(ch))
            i += 1
    labels.append(bytes(current))
    return labels


def _escape_label(label: bytes) -> str:
    out = []
    for b in label:
        ch = chr(b)
        if ch in ".\\":
            out.append("\\" + ch)
        elif 0x21 <= b <= 0x7E:
            out.append(ch)
        else:
            out.append(f"\\{b:03d}")
    return "".join(out)


class Name:
    """An absolute domain name (always fully qualified).

    Immutable and hashable; comparisons are case-insensitive per RFC 1035
    §2.3.3, and :meth:`canonical_key` provides RFC 4034 §6.1 ordering.
    """

    __slots__ = ("_labels", "_lowered_labels")

    def __init__(self, labels: Iterable[bytes]) -> None:
        labels = tuple(labels)
        # Normalise away an explicit root label at the end.
        if labels and labels[-1] == b"":
            labels = labels[:-1]
        for label in labels:
            if not label:
                raise NameError_("empty interior label")
            if len(label) > MAX_LABEL_LENGTH:
                raise NameError_(f"label exceeds 63 octets: {label!r}")
        wire_len = sum(len(l) + 1 for l in labels) + 1
        if wire_len > MAX_NAME_LENGTH:
            raise NameError_(f"name exceeds 255 octets ({wire_len})")
        object.__setattr__(self, "_labels", labels)
        object.__setattr__(self, "_lowered_labels", None)

    def __setattr__(self, *_args) -> None:  # pragma: no cover - immutability
        raise AttributeError("Name is immutable")

    def __reduce__(self):
        # Slots + the blocked __setattr__ break default pickling;
        # rebuild through the constructor instead.
        return (Name, (self._labels,))

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse presentation format.  ``"."`` is the root."""
        if text in (".", ""):
            return cls(())
        if text.endswith(".") and not text.endswith("\\."):
            text = text[:-1]
        labels = _unescape(text)
        return cls(labels)

    @classmethod
    def from_wire(cls, wire: bytes, offset: int = 0) -> Tuple["Name", int]:
        """Decode from wire format, following compression pointers.

        Returns ``(name, next_offset)`` where ``next_offset`` is the offset
        just past the name *in the original stream* (pointers do not move
        the stream position forward).
        """
        labels: List[bytes] = []
        jumps = 0
        cursor = offset
        end = -1
        while True:
            if cursor >= len(wire):
                raise NameError_("truncated name")
            length = wire[cursor]
            if length & 0xC0 == 0xC0:
                if cursor + 1 >= len(wire):
                    raise NameError_("truncated compression pointer")
                target = ((length & 0x3F) << 8) | wire[cursor + 1]
                if end < 0:
                    end = cursor + 2
                if target >= cursor:
                    raise NameError_("forward compression pointer")
                cursor = target
                jumps += 1
                if jumps > 128:
                    raise NameError_("compression pointer loop")
            elif length & 0xC0:
                raise NameError_(f"reserved label type 0x{length:02x}")
            elif length == 0:
                if end < 0:
                    end = cursor + 1
                return cls(labels), end
            else:
                if cursor + 1 + length > len(wire):
                    raise NameError_("truncated label")
                labels.append(wire[cursor + 1 : cursor + 1 + length])
                cursor += 1 + length

    # -- accessors ---------------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        """Labels from leftmost to rightmost, excluding the root label."""
        return self._labels

    def is_root(self) -> bool:
        """True for ``"."`` — the name this whole study is about."""
        return not self._labels

    def parent(self) -> "Name":
        """Name with the leftmost label removed."""
        if self.is_root():
            raise NameError_("root has no parent")
        return Name(self._labels[1:])

    def is_subdomain_of(self, ancestor: "Name") -> bool:
        """True if *self* equals or falls under *ancestor*."""
        alab = ancestor.lowered()._labels
        slab = self.lowered()._labels
        if len(alab) > len(slab):
            return False
        return slab[len(slab) - len(alab) :] == alab

    def concatenate(self, suffix: "Name") -> "Name":
        """Append *suffix*'s labels after this name's labels."""
        return Name(self._labels + suffix._labels)

    # -- encodings ---------------------------------------------------------

    def to_wire(self) -> bytes:
        """Uncompressed wire form (compression is legal but optional)."""
        out = bytearray()
        for label in self._labels:
            out.append(len(label))
            out.extend(label)
        out.append(0)
        return bytes(out)

    def to_text(self) -> str:
        """Presentation format, always with a trailing dot."""
        if self.is_root():
            return "."
        return ".".join(_escape_label(l) for l in self._labels) + "."

    def _lowered(self) -> Tuple[bytes, ...]:
        """Memoised lowercase labels (names are immutable, so cache)."""
        cached = self._lowered_labels
        if cached is None:
            cached = tuple(label.lower() for label in self._labels)
            object.__setattr__(self, "_lowered_labels", cached)
        return cached

    def lowered(self) -> "Name":
        """Canonical (lowercased) form per RFC 4034 §6.2."""
        return Name(self._lowered())

    def canonical_wire(self) -> bytes:
        """Lowercased, uncompressed wire form (DNSSEC canonical form)."""
        out = bytearray()
        for label in self._lowered():
            out.append(len(label))
            out.extend(label)
        out.append(0)
        return bytes(out)

    def canonical_key(self) -> Tuple[bytes, ...]:
        """Sort key implementing RFC 4034 §6.1 canonical name order.

        Names sort by comparing labels right-to-left (most significant
        last label first), each label as lowercase raw octets.
        """
        return tuple(reversed(self._lowered()))

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._lowered() == other._lowered()

    def __hash__(self) -> int:
        return hash(self._lowered())

    def __lt__(self, other: "Name") -> bool:
        return self.canonical_key() < other.canonical_key()

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"

    def __str__(self) -> str:
        return self.to_text()


#: The root name — the subject of the paper.
ROOT_NAME = Name(())
