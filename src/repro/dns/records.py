"""Resource records and RRsets.

An :class:`RRset` groups records sharing (name, class, type); DNSSEC signs
and ZONEMD digests operate on RRsets in canonical order (RFC 4034 §6.3).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name
from repro.dns.rdata import Rdata


@dataclass(frozen=True)
class ResourceRecord:
    """One DNS resource record."""

    name: Name
    rrtype: RRType
    rrclass: RRClass
    ttl: int
    rdata: Rdata

    def __post_init__(self) -> None:
        if not 0 <= self.ttl <= 0xFFFFFFFF:
            raise ValueError(f"TTL out of range: {self.ttl}")

    def to_wire(self) -> bytes:
        """Standard wire form (uncompressed owner name)."""
        rdata_wire = self.rdata.to_wire()
        return (
            self.name.to_wire()
            + struct.pack("!HHIH", int(self.rrtype), int(self.rrclass), self.ttl, len(rdata_wire))
            + rdata_wire
        )

    def canonical_wire(self, original_ttl: int = None) -> bytes:
        """RFC 4034 §6.2 canonical form used in digests and signatures.

        *original_ttl* replaces the TTL when digesting under an RRSIG whose
        Original TTL field differs (RFC 4034 §6.2 clause 4).  Results are
        memoised per TTL — records are immutable and the canonical form is
        recomputed millions of times during signing, digesting and AXFR.
        """
        ttl = self.ttl if original_ttl is None else original_ttl
        cache = self.__dict__.get("_cw_cache")
        if cache is None:
            cache = {}
            object.__setattr__(self, "_cw_cache", cache)
        cached = cache.get(ttl)
        if cached is None:
            rdata_wire = self.rdata.canonical_wire()
            cached = (
                self.name.canonical_wire()
                + struct.pack(
                    "!HHIH", int(self.rrtype), int(self.rrclass), ttl, len(rdata_wire)
                )
                + rdata_wire
            )
            cache[ttl] = cached
        return cached

    @classmethod
    def from_wire(cls, wire: bytes, offset: int) -> Tuple["ResourceRecord", int]:
        """Decode one record; returns (record, next_offset)."""
        name, pos = Name.from_wire(wire, offset)
        rrtype, rrclass, ttl, rdlength = struct.unpack_from("!HHIH", wire, pos)
        pos += 10
        if pos + rdlength > len(wire):
            raise ValueError("truncated RDATA")
        rdata = Rdata.parse(rrtype, wire, pos, rdlength)
        try:
            rrtype_enum = RRType(rrtype)
        except ValueError:
            rrtype_enum = rrtype  # type: ignore[assignment]
        try:
            rrclass_enum = RRClass(rrclass)
        except ValueError:
            rrclass_enum = rrclass  # type: ignore[assignment]
        return cls(name, rrtype_enum, rrclass_enum, ttl, rdata), pos + rdlength

    def to_text(self) -> str:
        """Master-file presentation line."""
        return (
            f"{self.name.to_text()}\t{self.ttl}\t{RRClass(self.rrclass).name}\t"
            f"{RRType(self.rrtype).name}\t{self.rdata.to_text()}"
        )

    def key(self) -> Tuple[Name, int, int]:
        """(owner, class, type) triple identifying this record's RRset."""
        return (self.name, int(self.rrclass), int(self.rrtype))


class RRset:
    """Records sharing (owner name, class, type).

    Maintains records in insertion order; :meth:`canonical_records` yields
    them sorted by canonical RDATA (RFC 4034 §6.3) for signing/digesting.
    """

    def __init__(self, records: Iterable[ResourceRecord]) -> None:
        self.records: List[ResourceRecord] = list(records)
        if not self.records:
            raise ValueError("RRset cannot be empty")
        first = self.records[0]
        for rec in self.records[1:]:
            if rec.key() != first.key():
                raise ValueError(
                    f"mixed RRset: {rec.key()} vs {first.key()}"
                )

    @property
    def name(self) -> Name:
        return self.records[0].name

    @property
    def rrtype(self) -> RRType:
        return self.records[0].rrtype

    @property
    def rrclass(self) -> RRClass:
        return self.records[0].rrclass

    @property
    def ttl(self) -> int:
        return min(r.ttl for r in self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def canonical_records(self, original_ttl: int = None) -> List[ResourceRecord]:
        """Records sorted by canonical RDATA wire form."""
        return sorted(
            self.records, key=lambda r: r.rdata.canonical_wire()
        )

    def canonical_wire(self, original_ttl: int = None) -> bytes:
        """Concatenated canonical forms, RDATA-sorted — digest input."""
        return b"".join(
            r.canonical_wire(original_ttl) for r in self.canonical_records()
        )


def group_rrsets(records: Iterable[ResourceRecord]) -> List[RRset]:
    """Group records into RRsets, preserving first-seen order of keys."""
    buckets: "dict[Tuple[Name, int, int], List[ResourceRecord]]" = {}
    order: List[Tuple[Name, int, int]] = []
    for rec in records:
        key = rec.key()
        if key not in buckets:
            buckets[key] = []
            order.append(key)
        buckets[key].append(rec)
    return [RRset(buckets[key]) for key in order]
