"""Study configuration.

The paper's campaign (675 VPs, 30-minute intervals, 174 days) is the
``paper_scale`` preset; ``standard`` and ``quick`` scale the VP count and
the measurement interval down proportionally (the regional mix, event
calendar and fault classes are preserved) so tests and benchmarks run in
seconds to minutes rather than hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.util.timeutil import Timestamp
from repro.vantage.ring import RingConfig
from repro.vantage.scheduler import CAMPAIGN_END, CAMPAIGN_START


@dataclass(frozen=True)
class StudyConfig:
    """All knobs of one study run."""

    seed: int = 2024
    ring_scale: float = 0.3
    ring_min_per_region: int = 4
    interval_scale: float = 12.0  # 30 min -> 6 h base interval
    campaign_start: Timestamp = CAMPAIGN_START
    campaign_end: Timestamp = CAMPAIGN_END
    rtt_sample_every: int = 2
    traceroute_sample_every: int = 4
    axfr_sample_every: int = 8
    clean_transfer_keep_one_in: int = 2000
    include_faults: bool = True
    #: VP-ring partitions the campaign is executed in.  Output is
    #: byte-identical for any shard count (the collectors merge back
    #: deterministically); >1 enables parallel execution.
    shards: int = 1
    #: Worker processes for sharded execution; 1 = run shards serially
    #: in-process, >1 = a ProcessPoolExecutor over the shards.
    workers: int = 1
    #: Campaign execution engine: "epoch" compiles per-(VP, address)
    #: route epochs and records columnar blocks (fast, the default);
    #: "scalar" walks every (round, VP, address) cell.  Collector output
    #: is byte-identical either way.
    engine: str = "epoch"

    def __post_init__(self) -> None:
        if self.ring_scale <= 0:
            raise ValueError(f"ring_scale must be positive: {self.ring_scale}")
        if self.interval_scale <= 0:
            raise ValueError(f"interval_scale must be positive: {self.interval_scale}")
        if self.campaign_end <= self.campaign_start:
            raise ValueError("campaign_end must be after campaign_start")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1: {self.shards}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if self.engine not in ("epoch", "scalar"):
            raise ValueError(
                f"engine must be 'epoch' or 'scalar': {self.engine!r}"
            )

    @property
    def ring_config(self) -> RingConfig:
        return RingConfig(
            scale=self.ring_scale, min_per_region=self.ring_min_per_region
        )

    # -- presets -------------------------------------------------------------------

    @classmethod
    def quick(cls, seed: int = 2024) -> "StudyConfig":
        """~100 VPs, 12-hour base interval: seconds-scale runs."""
        return cls(
            seed=seed,
            ring_scale=0.15,
            interval_scale=24.0,
            rtt_sample_every=1,
            traceroute_sample_every=2,
            axfr_sample_every=4,
            clean_transfer_keep_one_in=500,
        )

    @classmethod
    def standard(cls, seed: int = 2024) -> "StudyConfig":
        """~200 VPs, 6-hour base interval: the benchmark default."""
        return cls(seed=seed)

    @classmethod
    def paper_scale(cls, seed: int = 2024) -> "StudyConfig":
        """The full 675-VP, 30-minute campaign (minutes-long run)."""
        return cls(
            seed=seed,
            ring_scale=1.0,
            ring_min_per_region=1,
            interval_scale=1.0,
            rtt_sample_every=8,
            traceroute_sample_every=16,
            axfr_sample_every=32,
            clean_transfer_keep_one_in=20000,
        )

    @classmethod
    def paper(cls, seed: int = 2024) -> "StudyConfig":
        """Alias of :meth:`paper_scale`: the preset whose world/platform
        match the paper's magnitudes (675 VPs, ~1.7k candidate sites)."""
        return cls.paper_scale(seed)

    def with_seed(self, seed: int) -> "StudyConfig":
        """Same configuration under a different seed."""
        return replace(self, seed=seed)

    def with_sharding(self, shards: int, workers: int = 1) -> "StudyConfig":
        """Same campaign, executed in *shards* partitions on *workers*
        processes (results are byte-identical to the serial run)."""
        return replace(self, shards=shards, workers=workers)

    def with_engine(self, engine: str) -> "StudyConfig":
        """Same study on a different campaign engine."""
        return replace(self, engine=engine)

    def serial(self) -> "StudyConfig":
        """The single-shard, in-process equivalent of this config."""
        return replace(self, shards=1, workers=1)
