"""Study configuration.

The paper's campaign (675 VPs, 30-minute intervals, 174 days) is the
``paper_scale`` preset; ``standard`` and ``quick`` scale the VP count and
the measurement interval down proportionally (the regional mix, event
calendar and fault classes are preserved) so tests and benchmarks run in
seconds to minutes rather than hours.

:class:`StudyConfig` is a thin frozen **facade** over the layered
scenario system (:mod:`repro.scenarios`): the flat fields are the
world/platform knobs every existing caller uses, and the optional
``world`` / ``traffic`` / ``faults`` mappings carry the layer extras a
composed scenario adds (site build-out timelines, population overrides,
query-mix composition, fault-class toggles).  The typed views —
:meth:`world_spec`, :meth:`platform_spec`, :meth:`traffic_spec`,
:meth:`fault_spec` — are what the construction stages consume.

Everything in a config is a JSON primitive: ``asdict()`` crosses
process-pool pipes, lands in ``MANIFEST.json`` / ``CHECKPOINT.json`` as
the study fingerprint (scenario identity included), and round-trips
back through :meth:`from_dict`, which is strict — unknown keys raise a
"did you mean" error instead of being silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Mapping, Optional

from repro.util.timeutil import Timestamp
from repro.vantage.ring import RingConfig
from repro.vantage.scheduler import CAMPAIGN_END, CAMPAIGN_START


@dataclass(frozen=True, eq=True)
class StudyConfig:
    """All knobs of one study run."""

    seed: int = 2024
    ring_scale: float = 0.3
    ring_min_per_region: int = 4
    interval_scale: float = 12.0  # 30 min -> 6 h base interval
    campaign_start: Timestamp = CAMPAIGN_START
    campaign_end: Timestamp = CAMPAIGN_END
    rtt_sample_every: int = 2
    traceroute_sample_every: int = 4
    axfr_sample_every: int = 8
    clean_transfer_keep_one_in: int = 2000
    include_faults: bool = True
    #: VP-ring partitions the campaign is executed in.  Output is
    #: byte-identical for any shard count (the collectors merge back
    #: deterministically); >1 enables parallel execution.
    shards: int = 1
    #: Worker processes for sharded execution; 1 = run shards serially
    #: in-process, >1 = a ProcessPoolExecutor over the shards.
    workers: int = 1
    #: Campaign execution engine: "epoch" compiles per-(VP, address)
    #: route epochs and records columnar blocks (fast, the default);
    #: "scalar" walks every (round, VP, address) cell.  Collector output
    #: is byte-identical either way.
    engine: str = "epoch"
    #: World-layer extras beyond the flat ring knobs (region_scale,
    #: site_scale, buildout, buildout_stage) — see
    #: :class:`repro.scenarios.specs.WorldSpec`.  ``None`` = defaults.
    world: Optional[Dict[str, Any]] = None
    #: Traffic-layer extras (population profile overrides, querymix) —
    #: see :class:`repro.scenarios.specs.TrafficSpec`.
    traffic: Optional[Dict[str, Any]] = None
    #: Fault-layer class toggles (bitflips, stale_sites, clock_skew) —
    #: see :class:`repro.scenarios.specs.FaultSpec`.
    faults: Optional[Dict[str, Any]] = None
    #: Scenario identity when this config was composed by the registry:
    #: ``{"name", "version", "fingerprint", "overlays"}``.  Pure
    #: provenance — never consulted by any construction stage, but it
    #: flows into MANIFEST.json / CHECKPOINT.json so saved data remembers
    #: which scenario produced it.
    scenario: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.ring_scale <= 0:
            raise ValueError(
                f"world spec: ring_scale must be positive: {self.ring_scale}"
            )
        if self.interval_scale <= 0:
            raise ValueError(
                f"platform spec: interval_scale must be positive: "
                f"{self.interval_scale}"
            )
        if self.campaign_end <= self.campaign_start:
            raise ValueError(
                "platform spec: campaign_end must be after campaign_start"
            )
        if self.shards < 1:
            raise ValueError(f"platform spec: shards must be >= 1: {self.shards}")
        if self.workers < 1:
            raise ValueError(
                f"platform spec: workers must be >= 1: {self.workers}"
            )
        if self.engine not in ("epoch", "scalar"):
            raise ValueError(
                f"platform spec: engine must be 'epoch' or 'scalar': "
                f"{self.engine!r}"
            )
        for layer in ("world", "traffic", "faults", "scenario"):
            value = getattr(self, layer)
            if value is not None and not isinstance(value, Mapping):
                raise ValueError(
                    f"{layer} layer must be a mapping or None, got "
                    f"{type(value).__name__}"
                )
        # Layer extras validate through their typed specs (raising with
        # layer-named messages); the default None path costs nothing.
        if self.world is not None:
            self.world_spec()
        if self.traffic is not None:
            self.traffic_spec()
        if self.faults is not None:
            self.fault_spec()

    # -- typed layer views -------------------------------------------------------------

    def world_spec(self):
        """This config's :class:`~repro.scenarios.specs.WorldSpec`."""
        from dataclasses import fields as spec_fields

        from repro.scenarios.specs import WorldSpec, reject_unknown_keys

        extras = dict(self.world or {})
        # The flat fields are the single source of truth for the knobs
        # they cover — the extras mapping may only carry the rest.
        reject_unknown_keys(
            "world layer",
            extras,
            [
                f.name
                for f in spec_fields(WorldSpec)
                if f.name not in ("ring_scale", "ring_min_per_region")
            ],
        )
        return WorldSpec(
            ring_scale=self.ring_scale,
            ring_min_per_region=self.ring_min_per_region,
            **extras,
        )

    def platform_spec(self):
        """This config's :class:`~repro.scenarios.specs.PlatformSpec`."""
        from repro.scenarios.specs import PlatformSpec

        return PlatformSpec(
            interval_scale=self.interval_scale,
            campaign_start=self.campaign_start,
            campaign_end=self.campaign_end,
            rtt_sample_every=self.rtt_sample_every,
            traceroute_sample_every=self.traceroute_sample_every,
            axfr_sample_every=self.axfr_sample_every,
            clean_transfer_keep_one_in=self.clean_transfer_keep_one_in,
            shards=self.shards,
            workers=self.workers,
            engine=self.engine,
        )

    def traffic_spec(self):
        """This config's :class:`~repro.scenarios.specs.TrafficSpec`."""
        from repro.scenarios.specs import TrafficSpec

        return TrafficSpec.from_dict(self.traffic or {})

    def fault_spec(self):
        """This config's :class:`~repro.scenarios.specs.FaultSpec`."""
        from repro.scenarios.specs import FaultSpec

        extras = dict(self.faults or {})
        if "include_faults" in extras:
            raise ValueError(
                "fault spec: include_faults lives on the flat config "
                "field, not in the faults extras mapping"
            )
        return FaultSpec.from_dict(
            {"include_faults": self.include_faults, **extras}
        )

    @property
    def ring_config(self) -> RingConfig:
        region_scale = (self.world or {}).get("region_scale") or {}
        return RingConfig(
            scale=self.ring_scale,
            min_per_region=self.ring_min_per_region,
            region_scale=tuple(sorted(
                (key, float(value)) for key, value in dict(region_scale).items()
            )),
        )

    @property
    def scenario_name(self) -> Optional[str]:
        """The registered scenario this config was composed from."""
        return (self.scenario or {}).get("name")

    @property
    def scenario_fingerprint(self) -> Optional[str]:
        """The composing scenario's content fingerprint, if any."""
        return (self.scenario or {}).get("fingerprint")

    # -- strict (de)serialization ------------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StudyConfig":
        """Rebuild a config from an ``asdict()``-shaped mapping.

        Strict: unknown keys raise a ``ValueError`` with a "did you
        mean" suggestion — a fingerprint written by a newer schema must
        fail loudly, never silently drop knobs.
        """
        from repro.scenarios.specs import reject_unknown_keys

        reject_unknown_keys(
            "study config", data, [f.name for f in fields(cls)]
        )
        return cls(**dict(data))

    def without_scenario(self) -> "StudyConfig":
        """This config minus its scenario provenance (for comparing a
        composed config against a hand-built one)."""
        return replace(self, scenario=None)

    # -- presets -------------------------------------------------------------------

    @classmethod
    def quick(cls, seed: int = 2024) -> "StudyConfig":
        """~100 VPs, 12-hour base interval: seconds-scale runs."""
        return cls(
            seed=seed,
            ring_scale=0.15,
            interval_scale=24.0,
            rtt_sample_every=1,
            traceroute_sample_every=2,
            axfr_sample_every=4,
            clean_transfer_keep_one_in=500,
        )

    @classmethod
    def standard(cls, seed: int = 2024) -> "StudyConfig":
        """~200 VPs, 6-hour base interval: the benchmark default."""
        return cls(seed=seed)

    @classmethod
    def paper_scale(cls, seed: int = 2024) -> "StudyConfig":
        """The full 675-VP, 30-minute campaign (minutes-long run)."""
        return cls(
            seed=seed,
            ring_scale=1.0,
            ring_min_per_region=1,
            interval_scale=1.0,
            rtt_sample_every=8,
            traceroute_sample_every=16,
            axfr_sample_every=32,
            clean_transfer_keep_one_in=20000,
        )

    @classmethod
    def paper(cls, seed: int = 2024) -> "StudyConfig":
        """The registered ``paper`` scenario (deprecated alias).

        Historically a bare alias of :meth:`paper_scale`; the preset now
        lives in the scenario registry, and this classmethod survives as
        a thin shim for existing callers — identical knobs, plus the
        scenario provenance stamp.
        """
        from repro.scenarios import compose

        return compose("paper").study_config(seed=seed)

    def with_seed(self, seed: int) -> "StudyConfig":
        """Same configuration under a different seed."""
        return replace(self, seed=seed)

    def with_sharding(self, shards: int, workers: int = 1) -> "StudyConfig":
        """Same campaign, executed in *shards* partitions on *workers*
        processes (results are byte-identical to the serial run)."""
        return replace(self, shards=shards, workers=workers)

    def with_engine(self, engine: str) -> "StudyConfig":
        """Same study on a different campaign engine."""
        return replace(self, engine=engine)

    def serial(self) -> "StudyConfig":
        """The single-shard, in-process equivalent of this config."""
        return replace(self, shards=1, workers=1)
