"""Study orchestration: configuration presets, world construction
(zone machinery + routing fabric + RSS deployments + VP ring), campaign
execution, and the results bundle the analysis layer consumes.
"""

from repro.core.config import StudyConfig
from repro.core.study import RootStudy
from repro.core.results import StudyResults

__all__ = ["StudyConfig", "RootStudy", "StudyResults"]
