"""Study orchestration: configuration presets, the staged pipeline
(world construction → measurement platform → campaign execution →
analysis), sharded/multiprocess campaign execution, and the results
bundle the analysis layer consumes.
"""

from repro.core.config import StudyConfig
from repro.core.pipeline import (
    ArtifactStore,
    PlatformArtifacts,
    StageTiming,
    StudyPipeline,
    WorldArtifacts,
    build_platform,
    build_world,
    clear_world_cache,
    shard_vp_lists,
)
from repro.core.study import RootStudy
from repro.core.results import StudyResults

__all__ = [
    "StudyConfig",
    "RootStudy",
    "StudyResults",
    "StudyPipeline",
    "ArtifactStore",
    "StageTiming",
    "WorldArtifacts",
    "PlatformArtifacts",
    "build_world",
    "build_platform",
    "clear_world_cache",
    "shard_vp_lists",
]
