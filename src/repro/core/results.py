"""The bundle a finished study hands to the analysis layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.core.config import StudyConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.data import Dataset
from repro.faults.plan import FaultPlan
from repro.netsim.topology import NetworkFabric
from repro.rss.server import RootServerDeployment
from repro.rss.sites import SiteCatalog
from repro.vantage.collector import CampaignCollector
from repro.vantage.node import VantagePoint
from repro.vantage.scheduler import MeasurementSchedule
from repro.zone.distribution import ZoneDistributor


@dataclass
class StudyResults:
    """Everything the per-table/figure analyses need, in one place."""

    config: StudyConfig
    schedule: MeasurementSchedule
    vps: List[VantagePoint]
    catalog: SiteCatalog
    fabric: NetworkFabric
    deployments: Dict[str, RootServerDeployment]
    distributor: ZoneDistributor
    fault_plan: FaultPlan
    collector: CampaignCollector
    _dataset: Optional["Dataset"] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def dataset(self) -> "Dataset":
        """The campaign's measurement output as a typed dataset.

        Sealed lazily from the collector (column arrays are shared, not
        copied) and stamped with this study's config as the dataset's
        study fingerprint; memoised thereafter.
        """
        if self._dataset is None:
            from repro.data import Dataset

            self._dataset = Dataset.from_collector(self.collector, self.config)
        return self._dataset

    def save(
        self,
        directory: str,
        passive: bool = True,
        passive_engine: str = "vectorized",
    ) -> Path:
        """Persist the dataset to *directory* (``rootsim-study --save``);
        returns the dataset path.

        With *passive* (the default), the standard passive captures for
        this study's seed (:func:`repro.passive.recipes.standard_captures`)
        ride along as passive tables, so Figures 7–13 later replay from
        disk with zero re-simulation.  An already-attached passive store
        is kept as-is.
        """
        from repro.data import save_dataset

        dataset = self.dataset
        if passive and dataset.passive is None:
            from repro.data.passive import PassiveStore
            from repro.passive.recipes import standard_captures

            dataset.attach_passive(
                PassiveStore.from_aggregates(
                    standard_captures(
                        self.config.seed,
                        engine=passive_engine,
                        traffic=self.config.traffic_spec(),
                    )
                )
            )
        return save_dataset(dataset, directory)

    def vp_by_id(self, vp_id: int) -> VantagePoint:
        """Look up a VP (ids are dense, list-indexed)."""
        vp = self.vps[vp_id]
        if vp.vp_id != vp_id:  # defensive: ids must stay dense
            raise RuntimeError("vp ids are not dense")
        return vp

    def summary(self) -> Dict[str, object]:
        """Human-readable study fingerprint."""
        out: Dict[str, object] = dict(self.collector.summary())
        out["vps"] = len(self.vps)
        out["networks"] = len({vp.asn for vp in self.vps})
        out["countries"] = len({vp.country for vp in self.vps})
        out["sites"] = len(self.catalog)
        return out
