"""The bundle a finished study hands to the analysis layer."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import StudyConfig
from repro.faults.plan import FaultPlan
from repro.netsim.topology import NetworkFabric
from repro.rss.server import RootServerDeployment
from repro.rss.sites import SiteCatalog
from repro.vantage.collector import CampaignCollector
from repro.vantage.node import VantagePoint
from repro.vantage.scheduler import MeasurementSchedule
from repro.zone.distribution import ZoneDistributor


@dataclass
class StudyResults:
    """Everything the per-table/figure analyses need, in one place."""

    config: StudyConfig
    schedule: MeasurementSchedule
    vps: List[VantagePoint]
    catalog: SiteCatalog
    fabric: NetworkFabric
    deployments: Dict[str, RootServerDeployment]
    distributor: ZoneDistributor
    fault_plan: FaultPlan
    collector: CampaignCollector

    def vp_by_id(self, vp_id: int) -> VantagePoint:
        """Look up a VP (ids are dense, list-indexed)."""
        vp = self.vps[vp_id]
        if vp.vp_id != vp_id:  # defensive: ids must stay dense
            raise RuntimeError("vp ids are not dense")
        return vp

    def summary(self) -> Dict[str, object]:
        """Human-readable study fingerprint."""
        out: Dict[str, object] = dict(self.collector.summary())
        out["vps"] = len(self.vps)
        out["networks"] = len({vp.asn for vp in self.vps})
        out["countries"] = len({vp.country for vp in self.vps})
        out["sites"] = len(self.catalog)
        return out
