"""The staged study pipeline: build_world → build_platform → run_campaign → analyze.

:class:`~repro.core.study.RootStudy` used to derive the whole world in one
monolithic constructor and run strictly serially through a single
in-memory collector.  This module splits that flow into four explicit,
individually timed stages over a typed artifact store:

* **build_world** — sites, routing fabric, zone machinery, deployments.
  Worlds depend only on the seed and are checkpointed in a module-level
  cache, so the CLI tools, benchmarks and repeated studies stop
  re-deriving identical worlds.
* **build_platform** — schedule, route selector, VP ring, fault plan,
  collector and prober (the full measurement platform).
* **run_campaign** — executes the campaign.  With ``config.shards > 1``
  the VP ring is partitioned and each shard probed against its own
  :class:`~repro.vantage.collector.CampaignCollector`; the shard
  collectors are then recombined with
  :meth:`~repro.vantage.collector.CampaignCollector.merge`, which is
  guaranteed to reproduce the serial run byte-for-byte.  With
  ``config.workers > 1`` the shards run on a ``ProcessPoolExecutor``.
* **analyze** — runs analyses by name through
  :mod:`repro.analysis.registry`.

Sharding invariant: every shard probes a *disjoint VP subset* over the
*full* schedule.  Catchment churn, sampling phase and fault state are all
keyed per (VP, address) or per timestamp, never across VPs, which is what
makes the partitioned execution exact rather than approximate.
"""

from __future__ import annotations

import json
import os
import shutil
import time
from collections import Counter
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.config import StudyConfig
from repro.core.results import StudyResults
from repro.faults.plan import FaultPlan, default_fault_plan
from repro.geo.continents import Continent
from repro.netsim.routing import RouteSelector
from repro.netsim.topology import NetworkFabric
from repro.rss.operators import ROOT_SERVERS
from repro.rss.server import RootServerDeployment
from repro.rss.sites import SiteCatalog, build_site_catalog
from repro.util.rng import RngFactory
from repro.vantage.collector import CampaignCollector
from repro.vantage.node import VantagePoint
from repro.vantage.probes import Prober, SamplingPolicy
from repro.vantage.ring import build_ring
from repro.vantage.scheduler import MeasurementSchedule
from repro.zone.distribution import ZoneDistributor
from repro.zone.rootzone import RootZoneBuilder


# --- typed artifact store -----------------------------------------------------------


class ArtifactStore:
    """Typed name -> value store with stage provenance.

    Every pipeline stage publishes its outputs here; later stages (and
    external consumers like benchmarks) read them back by name.  ``get``
    with an ``expected_type`` doubles as a lightweight schema check.
    """

    def __init__(self) -> None:
        self._values: Dict[str, Any] = {}
        self._producers: Dict[str, str] = {}

    def put(
        self,
        name: str,
        value: Any,
        *,
        stage: str,
        expected_type: Optional[type] = None,
    ) -> None:
        if expected_type is not None and not isinstance(value, expected_type):
            raise TypeError(
                f"artifact {name!r} must be {expected_type.__name__}, "
                f"got {type(value).__name__}"
            )
        self._values[name] = value
        self._producers[name] = stage

    def get(self, name: str, expected_type: Optional[type] = None) -> Any:
        if name not in self._values:
            raise KeyError(
                f"artifact {name!r} not available; run its producing stage first"
            )
        value = self._values[name]
        if expected_type is not None and not isinstance(value, expected_type):
            raise TypeError(
                f"artifact {name!r} is {type(value).__name__}, "
                f"expected {expected_type.__name__}"
            )
        return value

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def names(self) -> List[str]:
        return sorted(self._values)

    def producer(self, name: str) -> str:
        """The stage that published *name*."""
        if name not in self._producers:
            raise KeyError(f"artifact {name!r} not available")
        return self._producers[name]


@dataclass(frozen=True)
class StageTiming:
    """Wall time of one executed (or reused) pipeline stage."""

    stage: str
    seconds: float
    reused: bool = False


def render_profile(profiler, limit: int = 30) -> str:
    """Human-readable top-*limit* cumulative view of a cProfile run."""
    import io
    import pstats

    stream = io.StringIO()
    stats = pstats.Stats(profiler, stream=stream)
    stats.strip_dirs().sort_stats("cumulative").print_stats(limit)
    return stream.getvalue()


# --- stage outputs ------------------------------------------------------------------


@dataclass
class WorldArtifacts:
    """Stage 1 output: the simulated world (seed-determined only)."""

    seed: int
    catalog: SiteCatalog
    fabric: NetworkFabric
    zone_builder: RootZoneBuilder
    distributor: ZoneDistributor
    deployments: Dict[str, RootServerDeployment]


@dataclass
class PlatformArtifacts:
    """Stage 2 output: the measurement platform for one config."""

    schedule: MeasurementSchedule
    expected_rounds: int
    selector: RouteSelector
    vps: List[VantagePoint]
    fault_plan: FaultPlan
    collector: CampaignCollector
    prober: Prober


# --- stage 1: build_world -----------------------------------------------------------

#: Checkpointed worlds by (seed, world-layer cache token): the seed plus
#: whatever part of the world spec shapes the site catalog.
_WORLD_CACHE: Dict[Any, WorldArtifacts] = {}


def _world_cache_key(config: StudyConfig) -> Any:
    return (config.seed, config.world_spec().cache_token())


def build_world(config: StudyConfig, *, reuse: bool = True) -> WorldArtifacts:
    """Build (or reuse) the world: sites, fabric, zone machinery, RSS.

    Worlds are immutable except for the distributor's staleness faults,
    which every campaign resets at start — so reuse across studies, CLI
    invocations and benchmarks is exact, not approximate.
    """
    cache_key = _world_cache_key(config)
    if reuse and cache_key in _WORLD_CACHE:
        return _WORLD_CACHE[cache_key]
    rng_factory = RngFactory(config.seed)
    catalog = build_site_catalog(rng_factory, config.world_spec().site_plan())
    fabric = NetworkFabric(catalog, rng_factory)
    zone_builder = RootZoneBuilder(seed=config.seed)
    distributor = ZoneDistributor(zone_builder)
    deployments = {
        letter: RootServerDeployment(
            ROOT_SERVERS[letter], catalog.of_letter(letter), distributor
        )
        for letter in ROOT_SERVERS
    }
    world = WorldArtifacts(
        seed=config.seed,
        catalog=catalog,
        fabric=fabric,
        zone_builder=zone_builder,
        distributor=distributor,
        deployments=deployments,
    )
    if reuse:
        _WORLD_CACHE[cache_key] = world
    return world


def clear_world_cache() -> None:
    """Drop every checkpointed world (tests / memory pressure)."""
    _WORLD_CACHE.clear()


# --- stage 2: build_platform --------------------------------------------------------


def _popular_d_sites(
    catalog: SiteCatalog, selector: RouteSelector, ring: List[VantagePoint]
) -> List[str]:
    """The most-visited d.root site in Asia and in Europe.

    Stale sites must actually be in some VP's catchment to be observable,
    so the fault plan targets the most-visited d.root sites (paper:
    Tokyo, 3 VPs; Leeds, 7 VPs).
    """
    counts: Counter = Counter()
    for vp in ring:
        for family in (4, 6):
            site = selector.best(vp.attachment, "d", family).site
            counts[site.key] += 1
    best: Dict[Continent, str] = {}
    site_by_key = {s.key: s for s in catalog.of_letter("d")}
    for key, _n in counts.most_common():
        continent = site_by_key[key].continent
        if continent in (Continent.ASIA, Continent.EUROPE) and continent not in best:
            best[continent] = key
    return [best[c] for c in (Continent.ASIA, Continent.EUROPE) if c in best]


def build_platform(config: StudyConfig, world: WorldArtifacts) -> PlatformArtifacts:
    """Build the measurement platform: schedule, selector, ring, faults,
    collector and prober."""
    rng_factory = RngFactory(config.seed)
    schedule = MeasurementSchedule(
        start=config.campaign_start,
        end=config.campaign_end,
        interval_scale=config.interval_scale,
    )
    expected_rounds = schedule.round_count()
    selector = world.fabric.selector(
        seed=config.seed, expected_rounds=expected_rounds
    )
    ring = build_ring(rng_factory, config.ring_config)

    fault_spec = config.fault_spec()
    if fault_spec.include_faults:
        stale_keys = _popular_d_sites(world.catalog, selector, ring)
        fault_plan = fault_spec.apply(
            default_fault_plan(world.catalog, len(ring), stale_site_keys=stale_keys)
        )
    else:
        fault_plan = FaultPlan()

    collector = CampaignCollector()
    prober = Prober(
        fabric=world.fabric,
        selector=selector,
        deployments=world.deployments,
        fault_plan=fault_plan,
        collector=collector,
        sampling=SamplingPolicy(
            rtt_every=config.rtt_sample_every,
            traceroute_every=config.traceroute_sample_every,
            axfr_every=config.axfr_sample_every,
            clean_transfer_keep_one_in=config.clean_transfer_keep_one_in,
        ),
    )
    return PlatformArtifacts(
        schedule=schedule,
        expected_rounds=expected_rounds,
        selector=selector,
        vps=ring,
        fault_plan=fault_plan,
        collector=collector,
        prober=prober,
    )


# --- stage 3: run_campaign ----------------------------------------------------------


def _execute_campaign(
    engine: str,
    prober: Prober,
    vps: Sequence[VantagePoint],
    schedule: MeasurementSchedule,
) -> CampaignCollector:
    """Run one (possibly shard-scoped) campaign on the configured engine."""
    if engine == "epoch":
        from repro.vantage.epoch_engine import run_epoch_campaign

        return run_epoch_campaign(prober, list(vps), schedule)
    return prober.run_campaign(list(vps), schedule)


def shard_vp_lists(
    vps: Sequence[VantagePoint], shards: int
) -> List[List[VantagePoint]]:
    """Round-robin partition of the ring into *shards* disjoint subsets.

    Round-robin (rather than contiguous blocks) balances the regional
    clustering of the ring across shards; any disjoint partition yields
    identical merged output.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1: {shards}")
    return [list(vps[i::shards]) for i in range(shards)]


#: Per-worker-process study config, installed once by the pool
#: initializer so shard tasks ship only ``(shard_index, spill_root)``
#: instead of re-pickling the config (and, transitively, nothing of the
#: parent's world or platform) per task.
_WORKER_CONFIG: Optional[StudyConfig] = None


def _init_shard_worker(config_values: Dict[str, Any], owner_pid: int) -> None:
    """Pool initializer: install the worker-process study config.

    *config_values* is a plain ``asdict()`` of primitives — the only
    payload that crosses the pipe at pool setup.  Worlds are NOT shipped:
    each worker derives its own through the seed-keyed module cache
    (``_WORLD_CACHE``), so repeated shard tasks in one worker reuse one
    world build.  *owner_pid* arms the orphan watchdog: workers must not
    outlive the campaign process that owns the pool.
    """
    from repro.util.procutil import exit_when_orphaned

    global _WORKER_CONFIG
    _WORKER_CONFIG = StudyConfig(**config_values)
    exit_when_orphaned(owner_pid)


def _run_shard_spill_job(shard_index: int, spill_root: str) -> Dict[str, Any]:
    """Worker-process entry: run one shard and spill it to disk.

    Returns only the spill path plus a summary — the collector's numpy
    buffers and zone graphs never transit the process-pool pipe.  The
    parent memory-maps the spill back via
    :func:`repro.data.spill.read_shard_spill`.
    """
    config = _WORKER_CONFIG
    if config is None:
        raise RuntimeError(
            "shard worker used before _init_shard_worker installed its config"
        )
    serial_config = config.serial()
    world = build_world(serial_config)
    platform = build_platform(serial_config, world)
    world.distributor.reset_faults()
    platform.prober.reset()
    shard_vps = shard_vp_lists(platform.vps, config.shards)[shard_index]
    _execute_campaign(config.engine, platform.prober, shard_vps, platform.schedule)

    from repro.data.spill import write_shard_spill

    spill_dir = write_shard_spill(
        Path(spill_root) / f"shard-{shard_index:03d}", platform.collector
    )
    import resource

    rusage = resource.getrusage(resource.RUSAGE_SELF)
    return {
        "shard": shard_index,
        "spill_dir": str(spill_dir),
        "summary": platform.collector.summary(),
        # worker-process CPU accounting: forkserver workers are children
        # of the forkserver daemon, not of the parent, so the parent's
        # RUSAGE_CHILDREN never sees them — report it ourselves.
        "worker_pid": os.getpid(),
        "worker_cpu_seconds": rusage.ru_utime + rusage.ru_stime,
    }


#: Handoff accounting for the most recent multiprocess campaign in this
#: process: ``{"shards", "payload_bytes", "spill_bytes", "spill_dirs"}``.
#: Benchmarks and CI read it to prove the spill path ran (spill_bytes >
#: 0) and to size the new handoff against the old pickled-collector one.
_LAST_SPILL_STATS: Optional[Dict[str, Any]] = None


def last_spill_stats() -> Optional[Dict[str, Any]]:
    """Stats for the last multiprocess campaign (None if none ran)."""
    return _LAST_SPILL_STATS


def _run_multiprocess(
    config: StudyConfig, spill_root: Path
) -> List[CampaignCollector]:
    """Run every shard on a process pool with mmap spill handoff.

    The pool uses the pinned start method (forkserver preferred, spawn
    fallback — never fork), ships the config once per worker via the
    initializer, and receives back per-shard spill *paths*; the heavy
    row buffers come home through the filesystem, memory-mapped.
    """
    global _LAST_SPILL_STATS
    from repro.data.spill import read_shard_spill, spill_nbytes
    from repro.util.procutil import mp_context, pool_width

    processes = pool_width(config.workers, config.shards)
    with ProcessPoolExecutor(
        max_workers=processes,
        mp_context=mp_context(preload=("repro.core.pipeline",)),
        initializer=_init_shard_worker,
        initargs=(asdict(config), os.getpid()),
    ) as pool:
        futures = [
            pool.submit(_run_shard_spill_job, index, str(spill_root))
            for index in range(config.shards)
        ]
        results = [future.result() for future in futures]

    worker_cpu: Dict[int, float] = {}
    for result in results:
        pid = result["worker_pid"]
        # rusage is cumulative per process; with task reuse the last
        # task's reading covers the earlier ones too
        worker_cpu[pid] = max(worker_cpu.get(pid, 0.0), result["worker_cpu_seconds"])
    _LAST_SPILL_STATS = {
        "shards": config.shards,
        "pool_processes": processes,
        "payload_bytes": sum(
            len(json.dumps(result).encode()) for result in results
        ),
        "spill_bytes": sum(spill_nbytes(r["spill_dir"]) for r in results),
        "spill_dirs": [r["spill_dir"] for r in results],
        "worker_cpu_seconds": round(sum(worker_cpu.values()), 2),
    }
    return [read_shard_spill(result["spill_dir"]) for result in results]


def _run_sharded(
    config: StudyConfig, world: WorldArtifacts, platform: PlatformArtifacts
) -> List[CampaignCollector]:
    """Run every shard in-process; returns the per-shard collectors in
    shard order."""
    collectors: List[CampaignCollector] = []
    for shard_vps in shard_vp_lists(platform.vps, config.shards):
        world.distributor.reset_faults()
        collector = CampaignCollector()
        prober = Prober(
            fabric=world.fabric,
            selector=platform.selector,
            deployments=world.deployments,
            fault_plan=platform.fault_plan,
            collector=collector,
            sampling=platform.prober.sampling,
        )
        _execute_campaign(config.engine, prober, shard_vps, platform.schedule)
        collectors.append(collector)
    return collectors


def run_campaign(
    config: StudyConfig, world: WorldArtifacts, platform: PlatformArtifacts
) -> CampaignCollector:
    """Execute the campaign (serial, sharded, or multiprocess) and leave
    the merged collector on the platform."""
    world.distributor.reset_faults()
    platform.prober.reset()
    if config.shards <= 1:
        _execute_campaign(
            config.engine, platform.prober, platform.vps, platform.schedule
        )
        return platform.collector
    if config.workers > 1:
        from repro.data.spill import spill_tempdir

        spill_root = spill_tempdir("rootsim-spill-")
        try:
            shard_collectors = _run_multiprocess(config, spill_root)
            world.distributor.reset_faults()
            platform.prober.reset()
            # merge copies every row out of the mmapped spill views, and
            # the reload already pulled the transfer metadata and zone
            # pack bytes into memory, so the spill directory is safe to
            # delete once the merge returns.
            merged = CampaignCollector.merge(shard_collectors)
        finally:
            shutil.rmtree(spill_root, ignore_errors=True)
        platform.collector = merged
        platform.prober.collector = merged
        return merged
    shard_collectors = _run_sharded(config, world, platform)
    world.distributor.reset_faults()
    platform.prober.reset()
    merged = CampaignCollector.merge(shard_collectors)
    platform.collector = merged
    platform.prober.collector = merged
    return merged


# --- stage 4: analyze ---------------------------------------------------------------


def analyze(
    results: StudyResults, names: Optional[Sequence[str]] = None, **inputs: Any
) -> Dict[str, Any]:
    """Run analyses by registry name against a results bundle.

    With ``names=None`` every registered analysis whose requirements the
    bundle satisfies is run.  Extra inputs (e.g. a passive-capture
    ``aggregate``) are forwarded to the registry.
    """
    from repro.analysis import registry

    if names is None:
        names = registry.runnable(results, **inputs)
    return {name: registry.run(name, results, **inputs) for name in names}


# --- the pipeline object ------------------------------------------------------------


class StudyPipeline:
    """Composable staged execution with artifact checkpointing and timing.

    Stages are idempotent: a second call reuses the stored artifacts (and
    records a zero-cost :class:`StageTiming` with ``reused=True``), so
    callers can drive stages in any mix — ``run()`` end-to-end, or
    stage-by-stage with inspection in between.
    """

    def __init__(
        self, config: Optional[StudyConfig] = None, profile: bool = False
    ) -> None:
        self.config = config or StudyConfig()
        #: Record a cProfile of the campaign stage into the artifact
        #: store (``campaign_profile`` / ``campaign_profile_top``).
        self.profile = profile
        self.store = ArtifactStore()
        self.timings: List[StageTiming] = []
        self._campaign_done = False

    # -- internals ---------------------------------------------------------------

    def _record(self, stage: str, started: float, reused: bool = False) -> None:
        self.timings.append(
            StageTiming(stage=stage, seconds=time.perf_counter() - started, reused=reused)
        )
        # Keep the per-stage timing log available as an artifact too, so
        # benchmarks and the CLI read timings the same way as any other
        # pipeline output.
        self.store.put("stage_timings", self.timings, stage=stage)

    # -- stages ------------------------------------------------------------------

    def build_world(self) -> WorldArtifacts:
        started = time.perf_counter()
        if "world" in self.store:
            world = self.store.get("world", WorldArtifacts)
            self._record("build_world", started, reused=True)
            return world
        reused = _world_cache_key(self.config) in _WORLD_CACHE
        world = build_world(self.config)
        self.store.put("world", world, stage="build_world", expected_type=WorldArtifacts)
        self.store.put("catalog", world.catalog, stage="build_world")
        self.store.put("fabric", world.fabric, stage="build_world")
        self.store.put("distributor", world.distributor, stage="build_world")
        self.store.put("deployments", world.deployments, stage="build_world")
        self._record("build_world", started, reused=reused)
        return world

    def build_platform(self) -> PlatformArtifacts:
        started = time.perf_counter()
        if "platform" in self.store:
            platform = self.store.get("platform", PlatformArtifacts)
            self._record("build_platform", started, reused=True)
            return platform
        world = self.build_world()
        platform = build_platform(self.config, world)
        self.store.put(
            "platform", platform, stage="build_platform", expected_type=PlatformArtifacts
        )
        self.store.put("schedule", platform.schedule, stage="build_platform")
        self.store.put("vps", platform.vps, stage="build_platform")
        self.store.put("fault_plan", platform.fault_plan, stage="build_platform")
        self._record("build_platform", started)
        return platform

    def run_campaign(self) -> CampaignCollector:
        started = time.perf_counter()
        if self._campaign_done:
            self._record("run_campaign", started, reused=True)
            return self.store.get("collector", CampaignCollector)
        world = self.build_world()
        platform = self.build_platform()
        if self.profile:
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                collector = run_campaign(self.config, world, platform)
            finally:
                profiler.disable()
            self.store.put("campaign_profile", profiler, stage="run_campaign")
            self.store.put(
                "campaign_profile_top", render_profile(profiler), stage="run_campaign"
            )
        else:
            collector = run_campaign(self.config, world, platform)
        self.store.put(
            "collector", collector, stage="run_campaign", expected_type=CampaignCollector
        )
        self._campaign_done = True
        self._record("run_campaign", started)
        return collector

    def analyze(
        self, names: Optional[Sequence[str]] = None, **inputs: Any
    ) -> Dict[str, Any]:
        started = time.perf_counter()
        out = analyze(self.results(), names, **inputs)
        self._record("analyze", started)
        return out

    # -- results -----------------------------------------------------------------

    @property
    def campaign_done(self) -> bool:
        return self._campaign_done

    def run(self) -> StudyResults:
        """Run every stage through the campaign; returns the bundle."""
        self.run_campaign()
        return self.results()

    def results(self) -> StudyResults:
        """The results bundle (only valid once the campaign has run)."""
        if not self._campaign_done:
            raise RuntimeError(
                "results() called before the campaign ran; "
                "call run() / run_campaign() first"
            )
        world = self.store.get("world", WorldArtifacts)
        platform = self.store.get("platform", PlatformArtifacts)
        return StudyResults(
            config=self.config,
            schedule=platform.schedule,
            vps=platform.vps,
            catalog=world.catalog,
            fabric=world.fabric,
            deployments=world.deployments,
            distributor=world.distributor,
            fault_plan=platform.fault_plan,
            collector=self.store.get("collector", CampaignCollector),
        )
