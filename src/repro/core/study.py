"""The study orchestrator: build the world, run the campaign.

Mirrors the paper's §4 methodology end-to-end: construct the root zone
machinery and its distribution, instantiate the RSS deployments on the
routing fabric, populate the VP ring, schedule the Figure 2 timeline,
inject the fault plan, and run the prober.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional

from repro.core.config import StudyConfig
from repro.core.results import StudyResults
from repro.faults.plan import FaultPlan, default_fault_plan
from repro.geo.continents import Continent
from repro.netsim.routing import RouteSelector
from repro.netsim.topology import NetworkFabric
from repro.rss.operators import ROOT_SERVERS
from repro.rss.server import RootServerDeployment
from repro.rss.sites import SiteCatalog, build_site_catalog
from repro.util.rng import RngFactory
from repro.vantage.collector import CampaignCollector
from repro.vantage.node import VantagePoint
from repro.vantage.probes import Prober, SamplingPolicy
from repro.vantage.ring import build_ring
from repro.vantage.scheduler import MeasurementSchedule
from repro.zone.distribution import ZoneDistributor
from repro.zone.rootzone import RootZoneBuilder


class RootStudy:
    """Builds and runs one complete measurement study."""

    def __init__(self, config: Optional[StudyConfig] = None) -> None:
        self.config = config or StudyConfig()
        self.rng_factory = RngFactory(self.config.seed)

        # World: sites, fabric, zone machinery, deployments.
        self.catalog: SiteCatalog = build_site_catalog(self.rng_factory)
        self.fabric = NetworkFabric(self.catalog, self.rng_factory)
        self.zone_builder = RootZoneBuilder(seed=self.config.seed)
        self.distributor = ZoneDistributor(self.zone_builder)
        self.deployments: Dict[str, RootServerDeployment] = {
            letter: RootServerDeployment(
                ROOT_SERVERS[letter], self.catalog.of_letter(letter), self.distributor
            )
            for letter in ROOT_SERVERS
        }

        # Measurement platform.
        self.schedule = MeasurementSchedule(
            start=self.config.campaign_start,
            end=self.config.campaign_end,
            interval_scale=self.config.interval_scale,
        )
        self._expected_rounds = self.schedule.round_count()
        self.selector: RouteSelector = self.fabric.selector(
            seed=self.config.seed, expected_rounds=self._expected_rounds
        )
        ring = build_ring(self.rng_factory, self.config.ring_config)

        # Faults: stale sites must actually be in some VP's catchment to
        # be observable, so pick the most-visited d.root sites (paper:
        # Tokyo, 3 VPs; Leeds, 7 VPs).
        if self.config.include_faults:
            stale_keys = self._popular_d_sites(ring)
            self.fault_plan = default_fault_plan(
                self.catalog, len(ring), stale_site_keys=stale_keys
            )
        else:
            self.fault_plan = FaultPlan()
        self.vps: List[VantagePoint] = ring

        self.collector = CampaignCollector()
        self.prober = Prober(
            fabric=self.fabric,
            selector=self.selector,
            deployments=self.deployments,
            fault_plan=self.fault_plan,
            collector=self.collector,
            sampling=SamplingPolicy(
                rtt_every=self.config.rtt_sample_every,
                traceroute_every=self.config.traceroute_sample_every,
                axfr_every=self.config.axfr_sample_every,
                clean_transfer_keep_one_in=self.config.clean_transfer_keep_one_in,
            ),
        )

    def _popular_d_sites(self, ring: List[VantagePoint]) -> List[str]:
        """The most-visited d.root site in Asia and in Europe."""
        counts: Counter = Counter()
        for vp in ring:
            for family in (4, 6):
                site = self.selector.best(vp.attachment, "d", family).site
                counts[site.key] += 1
        best: Dict[Continent, str] = {}
        site_by_key = {s.key: s for s in self.catalog.of_letter("d")}
        for key, _n in counts.most_common():
            continent = site_by_key[key].continent
            if continent in (Continent.ASIA, Continent.EUROPE) and continent not in best:
                best[continent] = key
        return [best[c] for c in (Continent.ASIA, Continent.EUROPE) if c in best]

    # -- execution -------------------------------------------------------------------

    def run(self) -> StudyResults:
        """Run the campaign and return the results bundle."""
        self.prober.run_campaign(self.vps, self.schedule)
        return self.results()

    def results(self) -> StudyResults:
        """The results bundle (valid after :meth:`run`)."""
        return StudyResults(
            config=self.config,
            schedule=self.schedule,
            vps=self.vps,
            catalog=self.catalog,
            fabric=self.fabric,
            deployments=self.deployments,
            distributor=self.distributor,
            fault_plan=self.fault_plan,
            collector=self.collector,
        )
