"""The study orchestrator: build the world, run the campaign.

Mirrors the paper's §4 methodology end-to-end: construct the root zone
machinery and its distribution, instantiate the RSS deployments on the
routing fabric, populate the VP ring, schedule the Figure 2 timeline,
inject the fault plan, and run the prober.

The heavy lifting lives in :mod:`repro.core.pipeline`'s explicit stages
(build_world → build_platform → run_campaign → analyze); ``RootStudy``
drives them and keeps the flat attribute surface (``catalog``,
``fabric``, ``vps``, ``collector``, ...) the rest of the codebase and
downstream users rely on.  Campaigns run serially by default; with
``StudyConfig.shards > 1`` the VP ring is partitioned into independently
collected shards (optionally on ``StudyConfig.workers`` processes) whose
merged output is byte-identical to the serial run.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import StudyConfig
from repro.core.pipeline import StudyPipeline
from repro.core.results import StudyResults
from repro.faults.plan import FaultPlan
from repro.rss.server import RootServerDeployment
from repro.rss.sites import SiteCatalog
from repro.util.rng import RngFactory
from repro.vantage.collector import CampaignCollector
from repro.vantage.node import VantagePoint
from repro.vantage.probes import Prober


class RootStudy:
    """Builds and runs one complete measurement study."""

    def __init__(
        self, config: Optional[StudyConfig] = None, profile: bool = False
    ) -> None:
        self.config = config or StudyConfig()
        self.rng_factory = RngFactory(self.config.seed)
        self.pipeline = StudyPipeline(self.config, profile=profile)

        world = self.pipeline.build_world()
        platform = self.pipeline.build_platform()
        self._world = world
        self._platform = platform

        # World: sites, fabric, zone machinery, deployments.
        self.catalog: SiteCatalog = world.catalog
        self.fabric = world.fabric
        self.zone_builder = world.zone_builder
        self.distributor = world.distributor
        self.deployments: Dict[str, RootServerDeployment] = world.deployments

        # Measurement platform.
        self.schedule = platform.schedule
        self._expected_rounds = platform.expected_rounds
        self.selector = platform.selector
        self.fault_plan: FaultPlan = platform.fault_plan
        self.vps: List[VantagePoint] = platform.vps

    # The collector (and its prober) are swapped for the merged instance
    # after a sharded run, so expose the platform's current objects.

    @property
    def collector(self) -> CampaignCollector:
        return self._platform.collector

    @property
    def prober(self) -> Prober:
        return self._platform.prober

    @property
    def timings(self):
        """Per-stage wall times recorded by the pipeline."""
        return self.pipeline.timings

    # -- execution -------------------------------------------------------------------

    def run(self) -> StudyResults:
        """Run the campaign and return the results bundle.

        Idempotent: a second call reuses the finished campaign instead of
        probing (and accumulating) again.
        """
        self.pipeline.run_campaign()
        return self.results()

    def results(self) -> StudyResults:
        """The results bundle (only valid after :meth:`run`)."""
        return self.pipeline.results()

    def analyze(
        self, names: Optional[Sequence[str]] = None, **inputs: Any
    ) -> Dict[str, Any]:
        """Run registered analyses by name (see :mod:`repro.analysis.registry`)."""
        return self.pipeline.analyze(names, **inputs)
