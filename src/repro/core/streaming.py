"""Round-incremental campaign execution with checkpoint/resume.

The batch pipeline (:mod:`repro.core.pipeline`) holds the whole campaign
in one collector and seals it at the end.  This module runs the same
campaign **in round ranges**: every ``checkpoint_every`` rounds the new
rows are folded out of the shard collectors, sealed into a columnar
chunk on disk (:mod:`repro.data.chunks`), and the crash-safe
``CHECKPOINT.json`` is atomically replaced.  Peak memory is bounded by
one chunk instead of the campaign, and a killed run resumes from the
last sealed chunk — producing a finalized dataset byte-identical to an
uninterrupted batch run (DESIGN.md §11).

Why resume is exact, engine by engine:

* **epoch** — :class:`~repro.vantage.epoch_engine.EpochCampaignPlan` is
  compiled from the seed alone and ``emit_range`` is pure over the
  restored collector aggregates; no process state survives a crash that
  the checkpoint does not carry.
* **scalar** — two pieces of live state exist outside the collector and
  are reconstructed on every advance: the churn flap state (advanced one
  ``select_index`` call per (pair, round) — replayed for the sealed
  rounds, every draw being a counter-based mix keyed by the round
  number) and the distributor's stale-site freeze state (the net state
  after round ``r`` is "frozen iff the window is active at ``ts_r``", so
  one ``_apply_stale_events(ts_{lo-1})`` after a fault reset restores
  it).

Sharding composes with streaming exactly like with the batch path: every
shard advances the same round range over its disjoint VP subset, and
:meth:`CampaignCollector.merge` folds the shard collectors — whose row
tables hold only the current chunk, earlier rows having been drained to
disk — into the chunk's globally-ordered rows plus the cumulative
aggregate state.  Timestamps ascend strictly across chunks, so
concatenating per-chunk merges reproduces the whole-campaign merge.
"""

from __future__ import annotations

import json
import os
import shutil
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.config import StudyConfig
from repro.core.pipeline import (
    WorldArtifacts,
    build_platform,
    build_world,
    shard_vp_lists,
)
from repro.data.chunks import (
    CheckpointReader,
    ChunkData,
    ChunkedDatasetWriter,
    read_passive_aggregate,
    write_passive_aggregate,
)
from repro.data.schema import CheckpointError
from repro.vantage.collector import CampaignCollector
from repro.vantage.epoch_engine import EpochCampaignPlan
from repro.vantage.probes import Prober


#: Called after every sealed chunk: (chunk_index, chunk_dir, lo, hi).
#: The crash-injection harness and the CLI progress line hook in here.
AfterChunk = Callable[[int, Path, int, int], None]


@dataclass
class StreamingRun:
    """What a streamed (possibly partial) campaign left behind."""

    config: StudyConfig
    checkpoint_dir: Path
    n_rounds: int
    rounds_done: int
    chunks: int
    #: Aggregate state over every sealed round (row tables empty — the
    #: rows live in the sealed chunks).
    collector: CampaignCollector

    @property
    def complete(self) -> bool:
        return self.rounds_done == self.n_rounds


# --- engine advance ------------------------------------------------------------------


def _config_fingerprint(config: StudyConfig) -> dict:
    """The config as it appears in a checkpoint (JSON round-tripped, so
    comparisons against a reloaded checkpoint are exact)."""
    return json.loads(json.dumps(asdict(config)))


def _replay_churn(selector, vps, addresses, n_rounds: int) -> None:
    """Advance the scalar churn state over the already-sealed rounds.

    ``ChurnModel.select_index`` must be called once per (pair, round) in
    round order; each draw is keyed by the round number, so replaying is
    exact.  Only the flap-state machine runs — no routing, probing or
    collection."""
    churn = selector.churn
    for vp in vps:
        for sa in addresses:
            n_candidates = len(selector.candidates(vp.attachment, sa.letter, sa.family))
            for round_no in range(n_rounds):
                churn.select_index(
                    vp.vp_id, sa.address, sa.letter, sa.family, round_no, n_candidates
                )


def _resync_stale(world: WorldArtifacts, prober: Prober, ts_prev: Optional[int]) -> None:
    """Put the distributor's freeze state where the scalar scan left it.

    After processing round ``r`` the net freeze state is "frozen iff the
    stale window is active at ``ts_r``" — so a full fault reset followed
    by one event application at the previous round's timestamp restores
    it exactly, whether we are resuming after a crash or interleaving
    shards that each mutate the shared distributor."""
    world.distributor.reset_faults()
    prober.reset()
    if ts_prev is not None:
        prober._apply_stale_events(ts_prev)


class _ShardRunner:
    """Advances one shard's campaign over round ranges."""

    def __init__(
        self,
        world: WorldArtifacts,
        platform,
        vps,
        engine: str,
        collector: CampaignCollector,
    ) -> None:
        self.world = world
        self.engine = engine
        self.vps = vps
        self.collector = collector
        self.ts_list = platform.schedule.rounds()
        self.prober = Prober(
            fabric=world.fabric,
            selector=platform.selector,
            deployments=world.deployments,
            fault_plan=platform.fault_plan,
            collector=collector,
            sampling=platform.prober.sampling,
        )
        self._plan: Optional[EpochCampaignPlan] = None
        if engine == "epoch":
            # Streamed plan: per-pair epoch lists are materialised one
            # chunk at a time, so the plan's retained memory is the
            # sparse trigger arrays, not O(campaign) epoch tuples.
            self._plan = EpochCampaignPlan(
                self.prober, list(vps), platform.schedule, streamed=True
            )

    def replay_to(self, round_no: int) -> None:
        """Reconstruct non-collector engine state for rounds ``[0, round_no)``."""
        if self.engine != "epoch":
            _replay_churn(
                self.prober.selector, self.vps, self.collector.addresses, round_no
            )

    def advance(self, lo: int, hi: int) -> None:
        """Execute rounds ``[lo, hi)`` into this shard's collector."""
        if self._plan is not None:
            self._plan.emit_range(lo, hi)
            return
        _resync_stale(
            self.world, self.prober, self.ts_list[lo - 1] if lo > 0 else None
        )
        for round_no in range(lo, hi):
            ts = self.ts_list[round_no]
            self.prober._apply_stale_events(ts)
            for vp in self.vps:
                self.prober.run_round(vp, round_no, ts)
            self.collector.rounds_processed += 1


# --- multiprocess shard workers ------------------------------------------------------

#: Per-worker-process streaming state: the study config installed by the
#: pool initializer, and a cache of live shard runners keyed by shard
#: index.  ProcessPoolExecutor does not pin tasks to workers, so a cache
#: entry is only reused when its recorded position matches the requested
#: ``lo`` — a reassigned shard rebuilds its runner from the shipped
#: state dict (correct always, cheap in the common pinned case).
_STREAM_CONFIG: Optional[StudyConfig] = None
_STREAM_RUNNERS: Dict[int, Tuple[_ShardRunner, int]] = {}


def _init_stream_worker(config_values: Dict[str, Any], owner_pid: int) -> None:
    """Pool initializer: install the worker-process study config.

    *owner_pid* arms the orphan watchdog — a SIGKILLed campaign (the
    crash-injection tests) must not leave workers blocked on the call
    queue holding its inherited file descriptors.
    """
    from repro.util.procutil import exit_when_orphaned

    global _STREAM_CONFIG
    _STREAM_CONFIG = StudyConfig(**config_values)
    _STREAM_RUNNERS.clear()
    exit_when_orphaned(owner_pid)


def _advance_stream_shard(
    shard_index: int, lo: int, hi: int, state: Dict, spill_root: str
) -> Dict[str, Any]:
    """Worker-process entry: advance one shard over ``[lo, hi)`` and
    spill the chunk's rows.

    The shipped *state* is the shard's aggregate state after round
    ``lo`` was sealed; a cached runner already carrying that state (its
    position matches ``lo``) advances directly, anything else rebuilds
    world, platform and runner from the per-process seed-keyed world
    cache plus the state dict.  Rows cross back to the parent through
    the spill — only this path string and the shard index transit the
    pool pipe.
    """
    config = _STREAM_CONFIG
    if config is None:
        raise RuntimeError(
            "stream worker used before _init_stream_worker installed its config"
        )
    cached = _STREAM_RUNNERS.get(shard_index)
    if cached is not None and cached[1] == lo:
        runner = cached[0]
    else:
        serial_config = config.serial()
        world = build_world(serial_config)
        platform = build_platform(serial_config, world)
        world.distributor.reset_faults()
        platform.prober.reset()
        shard_vps = shard_vp_lists(platform.vps, config.shards)[shard_index]
        collector = CampaignCollector()
        collector.restore_state_dict(state)
        runner = _ShardRunner(world, platform, shard_vps, config.engine, collector)
        runner.replay_to(lo)

    runner.advance(lo, hi)

    from repro.data.spill import write_shard_spill

    spill_dir = write_shard_spill(
        Path(spill_root) / f"rounds-{lo:05d}-shard-{shard_index:03d}",
        runner.collector,
    )
    # Drain so the next advance appends only its own chunk's rows; the
    # aggregates stay cumulative, exactly like the in-process path.
    runner.collector.drain_rows()
    _STREAM_RUNNERS[shard_index] = (runner, hi)
    return {"shard": shard_index, "spill_dir": str(spill_dir)}


# --- chunk delta extraction ----------------------------------------------------------


def _stability_delta(
    prev: Dict[Tuple[int, int], Tuple[int, int]],
    now: Dict[Tuple[int, int], Tuple[int, int]],
) -> Dict[str, np.ndarray]:
    """Per-pair (changes, rounds) accrued since the previous seal, as
    stability-schema columns sorted by (vp, addr)."""
    rows = []
    for pair in sorted(now):
        changes, rounds = now[pair]
        p_changes, p_rounds = prev.get(pair, (0, 0))
        if changes != p_changes or rounds != p_rounds:
            rows.append((pair[0], pair[1], changes - p_changes, rounds - p_rounds))
    return {
        "vp": np.array([r[0] for r in rows], dtype=np.int32),
        "addr": np.array([r[1] for r in rows], dtype=np.int16),
        "changes": np.array([r[2] for r in rows], dtype=np.int32),
        "rounds": np.array([r[3] for r in rows], dtype=np.int32),
    }


def _identity_delta(
    prev: Dict[str, Dict[str, int]], now: Dict[str, Dict[str, int]]
) -> Dict[str, Dict[str, int]]:
    """Per-(letter, identity) observation counts accrued since the
    previous seal (insertion order follows the cumulative dict)."""
    delta: Dict[str, Dict[str, int]] = {}
    for letter, bucket in now.items():
        prev_bucket = prev.get(letter, {})
        for identity, count in bucket.items():
            d = count - prev_bucket.get(identity, 0)
            if d:
                delta.setdefault(letter, {})[identity] = d
    return delta


def _snapshot_identities(collector: CampaignCollector) -> Dict[str, Dict[str, int]]:
    return {letter: dict(bucket) for letter, bucket in collector.identities.items()}


# --- the streamed campaign -----------------------------------------------------------


def run_streaming_campaign(
    config: StudyConfig,
    checkpoint_dir: Union[str, Path],
    *,
    checkpoint_every: int = 8,
    resume: bool = False,
    after_chunk: Optional[AfterChunk] = None,
) -> StreamingRun:
    """Run (or resume) the campaign, sealing a chunk every N rounds.

    With ``resume=True`` the checkpoint in *checkpoint_dir* is loaded,
    any unsealed tail chunk is discarded, and execution continues from
    the last sealed round; the eventual
    :func:`finalize_streaming_campaign` output is byte-identical to an
    uninterrupted run's.  *after_chunk* fires after every seal — it may
    raise (or the process may die) without endangering sealed state.
    """
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1: {checkpoint_every}")

    world = build_world(config)
    platform = build_platform(config, world)
    world.distributor.reset_faults()
    platform.prober.reset()
    n_rounds = platform.expected_rounds
    shard_vps = shard_vp_lists(platform.vps, config.shards)
    study = _config_fingerprint(config)

    writer = ChunkedDatasetWriter(checkpoint_dir)
    global_state = CampaignCollector()
    shard_collectors = [CampaignCollector() for _ in shard_vps]

    if resume:
        ckpt = writer.resume()
        if ckpt["study"] != study:
            raise CheckpointError(
                f"checkpoint at {writer.path} was started with a different "
                f"study configuration; refusing to resume into it"
            )
        if ckpt["n_rounds"] != n_rounds or ckpt["shards"] != config.shards:
            raise CheckpointError(
                f"checkpoint at {writer.path} disagrees with the config: "
                f"{ckpt['n_rounds']} rounds / {ckpt['shards']} shards vs "
                f"{n_rounds} / {config.shards}"
            )
        if len(ckpt["shard_states"]) != len(shard_collectors):
            raise CheckpointError(
                f"checkpoint at {writer.path} carries "
                f"{len(ckpt['shard_states'])} shard states for "
                f"{len(shard_collectors)} shards"
            )
        global_state.restore_state_dict(ckpt["state"])
        for collector, state in zip(shard_collectors, ckpt["shard_states"]):
            collector.restore_state_dict(state)
    else:
        writer.start(
            study=study,
            addresses=[sa.address for sa in global_state.addresses],
            engine=config.engine,
            shards=config.shards,
            n_rounds=n_rounds,
            state=global_state.state_dict(),
            shard_states=[c.state_dict() for c in shard_collectors],
        )

    rounds_done = writer.rounds_done
    use_workers = config.workers > 1 and config.shards > 1
    pool: Optional[ProcessPoolExecutor] = None
    spill_root: Optional[Path] = None
    runners: List[_ShardRunner] = []
    shard_states: List[Dict] = []
    if use_workers:
        # Shards advance on worker processes; each chunk comes home as a
        # per-shard mmap spill, merged columnar-ly here at seal time.
        # The shipped per-task payload is (shard, range, state dict);
        # returned payload is the spill path.
        from repro.data.spill import spill_tempdir
        from repro.util.procutil import mp_context, pool_width

        shard_states = [c.state_dict() for c in shard_collectors]
        spill_root = spill_tempdir("rootsim-stream-spill-")
        pool = ProcessPoolExecutor(
            max_workers=pool_width(config.workers, config.shards),
            mp_context=mp_context(preload=("repro.core.streaming",)),
            initializer=_init_stream_worker,
            initargs=(asdict(config), os.getpid()),
        )
    else:
        runners = [
            _ShardRunner(world, platform, vps, config.engine, collector)
            for vps, collector in zip(shard_vps, shard_collectors)
        ]
        for runner in runners:
            runner.replay_to(rounds_done)

    prev_counts = global_state.change_counts()
    prev_idents = _snapshot_identities(global_state)
    prev_queries = global_state.queries_simulated
    prev_total = global_state.transfer_total
    prev_clean = global_state.transfer_clean

    try:
        lo = rounds_done
        while lo < n_rounds:
            hi = min(lo + checkpoint_every, n_rounds)
            spill_dirs: List[str] = []
            if use_workers:
                from repro.data.spill import read_shard_spill

                futures = [
                    pool.submit(
                        _advance_stream_shard,
                        index,
                        lo,
                        hi,
                        shard_states[index],
                        str(spill_root),
                    )
                    for index in range(len(shard_collectors))
                ]
                results = [future.result() for future in futures]
                spill_dirs = [r["spill_dir"] for r in results]
                chunk_collectors = [read_shard_spill(d) for d in spill_dirs]
            else:
                for runner in runners:
                    runner.advance(lo, hi)
                chunk_collectors = shard_collectors

            merged = CampaignCollector.merge(chunk_collectors)
            probes, traceroutes, transfers = merged.drain_rows()
            chunk = ChunkData(
                round_lo=lo,
                round_hi=hi,
                probes=probes,
                traceroutes=traceroutes,
                stability=_stability_delta(prev_counts, merged.change_counts()),
                identities=_identity_delta(prev_idents, merged.identities),
                transfers=transfers,
                queries=merged.queries_simulated - prev_queries,
                transfer_total=merged.transfer_total - prev_total,
                transfer_clean=merged.transfer_clean - prev_clean,
            )
            for collector in chunk_collectors:
                collector.drain_rows()
            shard_states = [c.state_dict() for c in chunk_collectors]
            chunk_index = len(writer.checkpoint["chunks"])
            chunk_dir = writer.seal_chunk(
                chunk,
                state=merged.state_dict(),
                shard_states=shard_states,
            )
            for spill_dir in spill_dirs:
                shutil.rmtree(spill_dir, ignore_errors=True)

            global_state = merged
            prev_counts = global_state.change_counts()
            prev_idents = _snapshot_identities(global_state)
            prev_queries = global_state.queries_simulated
            prev_total = global_state.transfer_total
            prev_clean = global_state.transfer_clean
            lo = hi
            if after_chunk is not None:
                after_chunk(chunk_index, chunk_dir, chunk.round_lo, hi)
    finally:
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        if spill_root is not None:
            shutil.rmtree(spill_root, ignore_errors=True)

    return StreamingRun(
        config=config,
        checkpoint_dir=writer.path,
        n_rounds=n_rounds,
        rounds_done=writer.rounds_done,
        chunks=len(writer.checkpoint["chunks"]),
        collector=global_state,
    )


# --- finalize ------------------------------------------------------------------------


def finalize_streaming_campaign(
    checkpoint_dir: Union[str, Path],
    out_dir: Union[str, Path],
    *,
    passive: bool = True,
    passive_engine: str = "vectorized",
) -> Path:
    """Turn a fully-sealed checkpoint into a normal dataset directory.

    Byte-identical to ``StudyResults.save`` for the equivalent batch run.
    Passive captures are built one at a time and cached under the
    checkpoint directory (``passive/<name>.json``), so a crash during
    this phase resumes without recomputing finished captures.
    """
    writer = ChunkedDatasetWriter(checkpoint_dir)
    ckpt = writer.resume()

    state = CampaignCollector()
    state.restore_state_dict(ckpt["state"])

    passive_store = None
    if passive:
        if ckpt.get("study") is None:
            raise CheckpointError(
                "checkpoint carries no study fingerprint; passive captures "
                "need the seed — finalize with passive=False"
            )
        from repro.data.passive import PassiveStore
        from repro.passive.recipes import STANDARD_CAPTURES, build_capture

        study_config = StudyConfig.from_dict(ckpt["study"])
        traffic = study_config.traffic_spec()
        aggregates = {}
        for name in STANDARD_CAPTURES:
            if name in ckpt.get("passive_done", []):
                aggregates[name] = read_passive_aggregate(writer.path, name)
            else:
                aggregates[name] = build_capture(
                    name, study_config.seed, passive_engine, traffic
                )
                write_passive_aggregate(writer.path, name, aggregates[name])
                writer.note_passive_done(name)
        passive_store = PassiveStore.from_aggregates(aggregates)

    return writer.finalize(out_dir, state_collector=state, passive_store=passive_store)


def load_streaming_checkpoint(checkpoint_dir: Union[str, Path]):
    """The stitched partial dataset of a checkpoint's sealed chunks."""
    return CheckpointReader(checkpoint_dir).dataset()


def config_from_checkpoint(checkpoint_dir: Union[str, Path]) -> StudyConfig:
    """The :class:`StudyConfig` a checkpoint was started with.

    ``--resume`` uses this instead of re-deriving the config from CLI
    flags, so a resumed run can never silently diverge from the run it
    continues."""
    ckpt = CheckpointReader(checkpoint_dir).checkpoint()
    study = ckpt.get("study")
    if study is None:
        raise CheckpointError(
            f"checkpoint at {checkpoint_dir} carries no study fingerprint; "
            f"it cannot be resumed from the CLI"
        )
    try:
        # Strict: a checkpoint written by a different schema must fail
        # loudly rather than silently drop the unknown knobs.
        return StudyConfig.from_dict(study)
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint at {checkpoint_dir} carries a study fingerprint "
            f"this version cannot reload: {exc}"
        ) from None
