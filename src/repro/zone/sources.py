"""Out-of-band root zone sources: ICANN CZDS and the IANA website.

The paper (§7) cross-checks AXFR-obtained zones against 194 CZDS files
(2023-09-15 .. 2024-03-27) and 23,823 IANA downloads (every 15 minutes,
2023-07-11 .. 2024-02-14), finding: CZDS files between 2023-09-21 and
2023-12-07 carry a ZONEMD record that does not validate (the private-
algorithm placeholder), and everything later validates.  These source
simulators reproduce that schedule, including CZDS's once-a-day snapshot
cadence and small publication delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.timeutil import DAY, HOUR, Timestamp, parse_ts
from repro.zone.distribution import ZoneDistributor
from repro.zone.rootzone import RootZoneBuilder
from repro.zone.zone import Zone

#: CZDS exposed the root zone with ZONEMD from this date (paper §7).
CZDS_FIRST_ZONEMD = parse_ts("2023-09-21")


@dataclass(frozen=True)
class ZoneDownload:
    """One downloaded zone file plus its retrieval timestamp."""

    source: str
    retrieved_at: Timestamp
    zone: Zone


class IanaSource:
    """Simulates downloading the root zone file from iana.org.

    IANA serves the latest published zone; downloads every 15 minutes see
    each new serial shortly after publication.
    """

    name = "iana"

    def __init__(self, distributor: ZoneDistributor, publish_delay_s: int = 30 * 60) -> None:
        self.distributor = distributor
        self.publish_delay_s = publish_delay_s

    def download(self, at_ts: Timestamp) -> ZoneDownload:
        """Fetch the zone file visible on the website at *at_ts*."""
        pub_ts, edition = self.distributor.latest_publication(at_ts - self.publish_delay_s)
        zone = self.distributor.zone_for_publication(pub_ts, edition)
        return ZoneDownload(source=self.name, retrieved_at=at_ts, zone=zone)

    def download_series(
        self, start: Timestamp, end: Timestamp, interval_s: int = 15 * 60
    ) -> List[ZoneDownload]:
        """The paper's every-15-minutes polling series over [start, end)."""
        out: List[ZoneDownload] = []
        ts = start
        while ts < end:
            out.append(self.download(ts))
            ts += interval_s
        return out


class CzdsSource:
    """Simulates ICANN CZDS root zone file access (one snapshot per day)."""

    name = "czds"

    def __init__(self, distributor: ZoneDistributor, snapshot_hour: int = 6) -> None:
        if not 0 <= snapshot_hour < 24:
            raise ValueError(f"snapshot hour out of range: {snapshot_hour}")
        self.distributor = distributor
        self.snapshot_hour = snapshot_hour

    def download(self, day_ts: Timestamp) -> ZoneDownload:
        """The CZDS snapshot for the UTC day containing *day_ts*."""
        day = day_ts - day_ts % DAY
        snapshot_ts = day + self.snapshot_hour * HOUR
        pub_ts, edition = self.distributor.latest_publication(snapshot_ts)
        zone = self.distributor.zone_for_publication(pub_ts, edition)
        return ZoneDownload(source=self.name, retrieved_at=snapshot_ts, zone=zone)

    def download_series(self, start: Timestamp, end: Timestamp) -> List[ZoneDownload]:
        """One snapshot per day over [start, end)."""
        out: List[ZoneDownload] = []
        day = start - start % DAY
        while day < end:
            out.append(self.download(day))
            day += DAY
        return out
