"""Zone distribution: from signing to the serving sites.

The root zone is published (new serial) twice a day; every root server
site then pulls the new copy with a small per-site propagation lag.  The
paper's Table 2 found two d.root sites (Tokyo, Leeds) serving a zone with
an *expired signature* — i.e. a stale local copy — so staleness is a
first-class concept here: a site can be frozen at an old publication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.util.timeutil import DAY, HOUR, Timestamp
from repro.zone.zone import Zone

if TYPE_CHECKING:  # avoid a runtime cycle: rootzone -> rss -> distribution
    from repro.zone.rootzone import RootZoneBuilder

#: Daily publication times (seconds into the UTC day): the real root zone
#: is typically regenerated twice per day.
PUBLICATION_OFFSETS = (4 * HOUR, 16 * HOUR)


@dataclass(frozen=True)
class SitePublication:
    """Which publication a site serves at a point in time."""

    publication_ts: Timestamp
    edition: int
    stale: bool


class ZoneDistributor:
    """Publication schedule plus per-site propagation and staleness.

    Zone copies are built lazily and cached by publication instant, so the
    tens of millions of simulated transfers share a few hundred objects.
    """

    def __init__(
        self,
        builder: "RootZoneBuilder",
        propagation_lag_s: int = 15 * 60,
    ) -> None:
        self.builder = builder
        self.propagation_lag_s = propagation_lag_s
        self._cache: Dict[Tuple[Timestamp, int], Zone] = {}
        #: site_key -> publication the site is frozen at (stale fault).
        self._frozen: Dict[str, Tuple[Timestamp, int]] = {}

    # -- schedule ---------------------------------------------------------------

    @staticmethod
    def publications_between(start: Timestamp, end: Timestamp) -> List[Tuple[Timestamp, int]]:
        """(publication_ts, edition) instants in [start, end)."""
        out: List[Tuple[Timestamp, int]] = []
        day = start - start % DAY
        while day < end:
            for edition, offset in enumerate(PUBLICATION_OFFSETS):
                ts = day + offset
                if start <= ts < end:
                    out.append((ts, edition))
            day += DAY
        return out

    @staticmethod
    def latest_publication(at_ts: Timestamp) -> Tuple[Timestamp, int]:
        """The most recent publication instant at or before *at_ts*."""
        day = at_ts - at_ts % DAY
        candidates: List[Tuple[Timestamp, int]] = []
        for d in (day - DAY, day):
            for edition, offset in enumerate(PUBLICATION_OFFSETS):
                ts = d + offset
                if ts <= at_ts:
                    candidates.append((ts, edition))
        if not candidates:
            raise ValueError(f"no publication at or before {at_ts}")
        return max(candidates)

    # -- zone copies -------------------------------------------------------------

    def zone_for_publication(self, publication_ts: Timestamp, edition: int) -> Zone:
        """The (cached) zone copy for a publication instant."""
        key = (publication_ts, edition)
        if key not in self._cache:
            self._cache[key] = self.builder.build(publication_ts, edition)
        return self._cache[key]

    def freeze_site(self, site_key: str, at_ts: Timestamp) -> None:
        """Stale-zone fault: pin *site_key* to the publication current at
        *at_ts*; it stops pulling newer zones until :meth:`unfreeze_site`."""
        self._frozen[site_key] = self.latest_publication(at_ts)

    def unfreeze_site(self, site_key: str) -> None:
        """Clear a staleness fault."""
        self._frozen.pop(site_key, None)

    def reset_faults(self) -> None:
        """Clear every staleness fault (campaign-start state).

        Campaign runs call this before their first round so that a world
        reused across studies — or across shard passes — always starts
        from the same unfaulted distribution state, even if a previous
        campaign ended inside a stale-site window.
        """
        self._frozen.clear()

    def is_frozen(self, site_key: str) -> bool:
        return site_key in self._frozen

    def site_publication(self, site_key: str, at_ts: Timestamp) -> SitePublication:
        """Which publication *site_key* serves at *at_ts*."""
        if site_key in self._frozen:
            pub_ts, edition = self._frozen[site_key]
            return SitePublication(pub_ts, edition, stale=True)
        pub_ts, edition = self.latest_publication(at_ts - self.propagation_lag_s)
        return SitePublication(pub_ts, edition, stale=False)

    def zone_at_site(self, site_key: str, at_ts: Timestamp) -> Zone:
        """The zone copy *site_key* serves at *at_ts*."""
        pub = self.site_publication(site_key, at_ts)
        return self.zone_for_publication(pub.publication_ts, pub.edition)

    def cache_size(self) -> int:
        """Number of distinct zone copies built so far."""
        return len(self._cache)

    # -- incremental transfer support ---------------------------------------------

    def ixfr_respond(self, client_serial: int, at_ts: Timestamp):
        """Serve an IXFR against the newest publication at *at_ts*.

        Maintains an internal journal lazily: the publications between
        the client's serial and the newest one are materialised on
        demand (they are deterministic, so the journal can always be
        reconstructed).  Returns an :class:`repro.zone.ixfr.IxfrResponse`.
        """
        from repro.zone.ixfr import IxfrJournal, IxfrServer
        from repro.zone.serial import serial_compare

        journal: "IxfrJournal" = getattr(self, "_journal", None)  # type: ignore[assignment]
        if journal is None:
            journal = IxfrJournal(max_versions=256)
            self._journal = journal

        newest_ts, newest_edition = self.latest_publication(at_ts)
        newest = self.zone_for_publication(newest_ts, newest_edition)

        # Walk publications backwards until we cover the client's serial
        # (bounded: at most the journal capacity).
        chain: List[Tuple[Timestamp, int]] = [(newest_ts, newest_edition)]
        ts = newest_ts - 1
        for _ in range(journal.max_versions - 1):
            head_zone = self.zone_for_publication(*chain[0])
            if serial_compare(head_zone.serial, client_serial) <= 0:
                break
            prev = self.latest_publication(ts)
            chain.insert(0, prev)
            ts = prev[0] - 1

        known = set(journal.serials)
        for pub_ts, edition in chain:
            zone = self.zone_for_publication(pub_ts, edition)
            if zone.serial not in known:
                try:
                    journal.append(zone)
                except ValueError:
                    # Serial predates the journal head: rebuild fresh.
                    journal = IxfrJournal(max_versions=256)
                    self._journal = journal
                    for p_ts, p_ed in chain:
                        journal.append(self.zone_for_publication(p_ts, p_ed))
                    break
                known.add(zone.serial)
        return IxfrServer(journal).respond(client_serial)
