"""Builder for the simulated root zone.

Reproduces the structure of the real root zone:

* apex SOA (``YYYYMMDDNN`` serial), NS set naming the 13 letters,
  DNSKEY (KSK + ZSK), full NSEC chain,
* one delegation (NS RRset + ``ns[12].nic.<tld>`` glue) per TLD in a
  synthetic-but-realistic TLD catalog — including ``world`` and ``ruhr``,
  which star in the paper's Figure 10 bitflip example,
* RRSIGs with time-nonced validity windows,
* a ZONEMD record following the real roll-out schedule (paper §7):
  absent before 2023-09-13, private-algorithm placeholder until
  2023-12-06, verifiable SHA-384 afterwards,
* b.root glue that flips from the old to the new addresses at the
  2023-11-27 renumbering.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Dict, List, Optional

if TYPE_CHECKING:
    from repro.dnssec.trustanchor import KskRolloverSchedule

from repro.dns.constants import (
    RRClass,
    RRType,
    ZONEMD_ALG_PRIVATE,
    ZONEMD_ALG_SHA384,
)
from repro.dns.name import Name, ROOT_NAME
from repro.dns.rdata import A, AAAA, NS, SOA, ZONEMD as ZonemdRdata
from repro.dns.records import ResourceRecord, RRset
from repro.dnssec.keys import KeyPair, generate_keypair
from repro.dnssec.nsec import build_nsec_chain
from repro.dnssec.sign import sign_rrset, sign_zone_records
from repro.dnssec.zonemd import make_zonemd_record
from repro.rss.operators import B_ROOT_CHANGE_TS, ROOT_SERVERS
from repro.util.timeutil import DAY, parse_ts
from repro.zone.serial import serial_for_day
from repro.zone.zone import Zone

#: ZONEMD roll-out milestones (paper Figure 2 / §7).
ZONEMD_PLACEHOLDER_DATE = parse_ts("2023-09-13")
ZONEMD_VALIDATABLE_DATE = parse_ts("2023-12-06")

#: RRSIG validity: inception ~4 days before the signing batch, ~13-day
#: window — the shape visible in the paper's Figure 10 RRSIGs.  Like the
#: real root, signatures are produced in batches (weekly here): all
#: publications of a week share the static body's signatures, and only
#: the SOA/ZONEMD records are re-signed per publication.
SIG_INCEPTION_LEAD = 4 * DAY
SIG_VALIDITY = 13 * DAY
SIGNING_BATCH = 7 * DAY

#: Synthetic TLD catalog: a representative mix of legacy gTLDs, ccTLDs and
#: new gTLDs.  ``world`` and ``ruhr`` are required by the Figure 10
#: reproduction (a bitflip turned ``.ruhr`` into ``.buèr`` and hit an
#: RRSIG over ``world.``'s NSEC).
DEFAULT_TLDS: List[str] = [
    "com", "net", "org", "edu", "gov", "mil", "int", "arpa",
    "de", "nl", "uk", "fr", "se", "no", "dk", "fi", "pl", "cz", "at", "ch",
    "it", "es", "pt", "ie", "be", "lu", "ru", "ua", "ro", "bg", "gr", "hu",
    "us", "ca", "mx", "br", "ar", "cl", "co", "pe", "uy", "ve",
    "jp", "cn", "hk", "sg", "kr", "tw", "in", "th", "my", "id", "ph", "vn",
    "au", "nz", "fj",
    "za", "ke", "ng", "eg", "ma", "tz", "gh", "sn", "mu",
    "info", "biz", "name", "mobi", "asia", "jobs", "travel", "tel", "cat",
    "world", "ruhr", "berlin", "hamburg", "koeln", "wien", "zuerich",
    "online", "site", "shop", "store", "app", "dev", "cloud", "digital",
    "tech", "systems", "network", "solutions", "services", "agency",
    "media", "news", "blog", "wiki", "club", "life", "live", "today",
    "email", "group", "team", "zone", "domains", "hosting", "codes",
    "tokyo", "nagoya", "osaka", "kyoto", "paris", "london", "nyc",
    "amsterdam", "brussels", "madrid", "barcelona", "moscow", "istanbul",
    "sydney", "melbourne", "capetown", "joburg", "durban", "africa",
    "museum", "aero", "coop", "post", "xxx", "pro",
    # IDN TLDs (A-label form), as in the real root zone.
    "xn--p1ai", "xn--fiqs8s", "xn--j6w193g", "xn--kprw13d",
    "xn--mgbaam7a8h", "xn--wgbh1c", "xn--90ais", "xn--d1alf",
    "xn--qxam", "xn--vermgensberater-ctb",
]


class RootZoneBuilder:
    """Builds publication-time-specific copies of the simulated root zone.

    One builder instance holds the (deterministic) key material and the
    static delegation data; :meth:`build` stamps serial, signatures and
    ZONEMD according to the publication timestamp.
    """

    def __init__(
        self,
        seed: int = 0,
        tlds: Optional[List[str]] = None,
        ksk_rollover: Optional["KskRolloverSchedule"] = None,
    ) -> None:
        self.seed = seed
        self.tlds = list(tlds) if tlds is not None else list(DEFAULT_TLDS)
        if len(set(self.tlds)) != len(self.tlds):
            raise ValueError("duplicate TLDs in catalog")
        seed_bytes = str(seed).encode("ascii")
        self.ksk: KeyPair = generate_keypair(b"root-ksk:" + seed_bytes, is_ksk=True)
        self.zsk: KeyPair = generate_keypair(b"root-zsk:" + seed_bytes, is_ksk=False)
        #: Optional KSK rollover (the Mueller et al. study-under-change
        #: scenario): a successor KSK phased in per the schedule.
        self.ksk_rollover = ksk_rollover
        self.ksk_next: Optional[KeyPair] = (
            generate_keypair(b"root-ksk-next:" + seed_bytes, is_ksk=True)
            if ksk_rollover is not None
            else None
        )
        #: (week_start, b_phase, zonemd_alg, ksk_phase) -> static body.
        self._static_cache: dict = {}

    # -- static structure -----------------------------------------------------

    def _tld_glue_ips(self, tld: str, ns_index: int) -> Dict[int, str]:
        """Deterministic, unique glue addresses for ``ns<i>.nic.<tld>``."""
        digest = hashlib.sha256(f"{self.seed}:{tld}:{ns_index}".encode()).digest()
        v4 = f"192.0.{digest[0]}.{max(1, digest[1])}"
        v6 = f"2001:db8:{digest[2]:x}{digest[3]:02x}:{ns_index:x}::53"
        return {4: v4, 6: v6}

    def _delegation_records(self) -> List[ResourceRecord]:
        """NS + glue for every TLD (unsigned by design, like the real root)."""
        records: List[ResourceRecord] = []
        for tld in self.tlds:
            tld_name = Name.from_text(f"{tld}.")
            for i in (1, 2):
                ns_name = Name.from_text(f"ns{i}.nic.{tld}.")
                records.append(
                    ResourceRecord(tld_name, RRType.NS, RRClass.IN, 172800, NS(ns_name))
                )
                ips = self._tld_glue_ips(tld, i)
                records.append(
                    ResourceRecord(ns_name, RRType.A, RRClass.IN, 172800, A(ips[4]))
                )
                records.append(
                    ResourceRecord(ns_name, RRType.AAAA, RRClass.IN, 172800, AAAA(ips[6]))
                )
        return records

    def _root_ns_records(self) -> List[ResourceRecord]:
        """The apex NS RRset naming the 13 letters."""
        out = []
        for letter in sorted(ROOT_SERVERS):
            target = Name.from_text(f"{letter}.root-servers.net.")
            out.append(
                ResourceRecord(ROOT_NAME, RRType.NS, RRClass.IN, 518400, NS(target))
            )
        return out

    def _root_server_glue(self, at_ts: int) -> List[ResourceRecord]:
        """Glue A/AAAA for the letters; b.root flips at the renumbering."""
        out: List[ResourceRecord] = []
        for letter in sorted(ROOT_SERVERS):
            server = ROOT_SERVERS[letter]
            owner = Name.from_text(server.name_text)
            out.append(
                ResourceRecord(
                    owner, RRType.A, RRClass.IN, 518400, A(server.address_for(4, at_ts))
                )
            )
            out.append(
                ResourceRecord(
                    owner, RRType.AAAA, RRClass.IN, 518400,
                    AAAA(server.address_for(6, at_ts)),
                )
            )
        return out

    # -- publication ------------------------------------------------------------

    def zonemd_algorithm_at(self, at_ts: int) -> Optional[int]:
        """ZONEMD hash algorithm published at *at_ts* (None = no record)."""
        if at_ts < ZONEMD_PLACEHOLDER_DATE:
            return None
        if at_ts < ZONEMD_VALIDATABLE_DATE:
            return ZONEMD_ALG_PRIVATE
        return ZONEMD_ALG_SHA384

    def signature_window(self, publication_ts: int) -> tuple:
        """(inception, expiration) of the signing batch covering the
        publication.  Every instant of the batch week falls inside."""
        week_start = publication_ts - publication_ts % SIGNING_BATCH
        inception = week_start - SIG_INCEPTION_LEAD
        return inception, inception + SIG_VALIDITY

    def _ksk_phase(self, at_ts: int) -> str:
        if self.ksk_rollover is None:
            return "static"
        return self.ksk_rollover.phase(at_ts)

    def _dnskey_rdatas(self, at_ts: int) -> List:
        """The apex DNSKEY set for the rollover phase at *at_ts*."""
        from repro.dnssec.trustanchor import revoked

        phase = self._ksk_phase(at_ts)
        keys = [self.zsk.dnskey]
        if phase in ("static", "pre"):
            keys.append(self.ksk.dnskey)
        elif phase in ("published", "swapped"):
            keys.append(self.ksk.dnskey)
            assert self.ksk_next is not None
            keys.append(self.ksk_next.dnskey)
        elif phase == "revoked":
            assert self.ksk_next is not None
            keys.append(revoked(self.ksk.dnskey))
            keys.append(self.ksk_next.dnskey)
        else:  # done
            assert self.ksk_next is not None
            keys.append(self.ksk_next.dnskey)
        return keys

    def active_ksk(self, at_ts: int) -> KeyPair:
        """The KSK signing the DNSKEY RRset at *at_ts*."""
        phase = self._ksk_phase(at_ts)
        if phase in ("static", "pre", "published"):
            return self.ksk
        assert self.ksk_next is not None
        return self.ksk_next

    def _static_body(self, publication_ts: int, zonemd_alg: Optional[int]) -> List[ResourceRecord]:
        """Everything except the SOA/ZONEMD RRsets and their RRSIGs.

        Cached per (signing batch, b.root phase, ZONEMD phase, rollover
        phase): the real root's body changes rarely, and its signatures
        in weekly batches.
        """
        week_start = publication_ts - publication_ts % SIGNING_BATCH
        b_phase = publication_ts >= B_ROOT_CHANGE_TS
        cache_key = (week_start, b_phase, zonemd_alg, self._ksk_phase(publication_ts))
        cached = self._static_cache.get(cache_key)
        if cached is not None:
            return cached

        records: List[ResourceRecord] = []
        records.extend(self._root_ns_records())
        records.extend(self._delegation_records())
        records.extend(self._root_server_glue(publication_ts))
        for dnskey in self._dnskey_rdatas(publication_ts):
            records.append(
                ResourceRecord(ROOT_NAME, RRType.DNSKEY, RRClass.IN, 172800, dnskey)
            )
        # The NSEC chain's apex type bitmap must list SOA (and ZONEMD when
        # published), so chain construction sees placeholders which are
        # not part of the static body itself.
        placeholders = [self._soa_record(publication_ts, 0)]
        if zonemd_alg is not None:
            placeholders.append(
                ResourceRecord(
                    ROOT_NAME,
                    RRType.ZONEMD,
                    RRClass.IN,
                    86400,
                    # digest content irrelevant for the type bitmap
                    ZonemdRdata(0, 1, 1, b"\x00" * 48),
                )
            )
        records.extend(build_nsec_chain(records + placeholders, ROOT_NAME))

        inception, expiration = self.signature_window(publication_ts)
        signed = sign_zone_records(
            records, self.zsk, self.active_ksk(publication_ts), ROOT_NAME,
            inception, expiration,
        )
        self._static_cache[cache_key] = signed
        return signed

    def _soa_record(self, publication_ts: int, edition: int) -> ResourceRecord:
        soa_rdata = SOA(
            mname=Name.from_text("a.root-servers.net."),
            rname=Name.from_text("nstld.verisign-grs.com."),
            serial=serial_for_day(publication_ts, edition),
            refresh=1800,
            retry=900,
            expire=604800,
            minimum=86400,
        )
        return ResourceRecord(ROOT_NAME, RRType.SOA, RRClass.IN, 86400, soa_rdata)

    def build(self, publication_ts: int, edition: int = 0) -> Zone:
        """Build the zone copy published at *publication_ts*."""
        zonemd_alg = self.zonemd_algorithm_at(publication_ts)
        static = self._static_body(publication_ts, zonemd_alg)
        inception, expiration = self.signature_window(publication_ts)

        soa = self._soa_record(publication_ts, edition)
        records: List[ResourceRecord] = [soa]
        records.extend(static)
        records.append(
            sign_rrset(RRset([soa]), self.zsk, ROOT_NAME, inception, expiration)
        )
        if zonemd_alg is not None:
            zonemd_rr = make_zonemd_record(
                records, ROOT_NAME, soa.rdata.serial, hash_algorithm=zonemd_alg
            )
            records.append(zonemd_rr)
            # The apex ZONEMD RRset is authoritative data and carries its
            # own RRSIG (excluded from the digest input, so no circularity).
            records.append(
                sign_rrset(RRset([zonemd_rr]), self.zsk, ROOT_NAME, inception, expiration)
            )
        return Zone(ROOT_NAME, records)
