"""IXFR — incremental zone transfer (RFC 1995).

Root zone consumers (and the paper's hypothetical local-root resolvers)
prefer IXFR: instead of re-pulling ~2 MB of zone, the server ships the
per-serial diffs.  The wire convention: the answer stream starts with
the *new* SOA, then per covered serial step one deletion block (old SOA
followed by removed records) and one addition block (new SOA followed by
added records), and closes with the new SOA again.  A server that cannot
serve the requested range falls back to a full AXFR-style stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.dns.constants import RRType
from repro.dns.rdata import SOA
from repro.dns.records import ResourceRecord
from repro.zone.serial import serial_compare
from repro.zone.transfer import TransferError
from repro.zone.zone import Zone


@dataclass(frozen=True)
class ZoneDelta:
    """The records removed/added between two consecutive zone versions."""

    old_serial: int
    new_serial: int
    removed: Tuple[ResourceRecord, ...]
    added: Tuple[ResourceRecord, ...]

    @property
    def size(self) -> int:
        return len(self.removed) + len(self.added)


def diff_zones(old: Zone, new: Zone) -> ZoneDelta:
    """Compute the delta between two zone copies.

    SOA records are excluded from the removed/added sets — IXFR carries
    them as block delimiters, not as payload.
    """
    def indexed(zone: Zone) -> Dict[bytes, ResourceRecord]:
        return {
            r.canonical_wire(): r
            for r in zone.records
            if r.rrtype != RRType.SOA
        }

    old_index = indexed(old)
    new_index = indexed(new)
    removed = tuple(
        old_index[w] for w in sorted(old_index.keys() - new_index.keys())
    )
    added = tuple(
        new_index[w] for w in sorted(new_index.keys() - old_index.keys())
    )
    return ZoneDelta(
        old_serial=old.serial,
        new_serial=new.serial,
        removed=removed,
        added=added,
    )


class IxfrJournal:
    """A server-side journal of consecutive zone versions.

    Holds the deltas needed to serve IXFR for any (old, new) pair within
    the retained window; older requests fall back to full transfer.
    """

    def __init__(self, max_versions: int = 64) -> None:
        if max_versions < 2:
            raise ValueError("journal needs at least two versions")
        self.max_versions = max_versions
        self._serials: List[int] = []
        self._zones: Dict[int, Zone] = {}
        self._deltas: Dict[Tuple[int, int], ZoneDelta] = {}

    @property
    def serials(self) -> List[int]:
        return list(self._serials)

    @property
    def latest(self) -> Optional[Zone]:
        if not self._serials:
            return None
        return self._zones[self._serials[-1]]

    def append(self, zone: Zone) -> None:
        """Add the next zone version (serial must increase)."""
        if self._serials:
            last = self._serials[-1]
            if serial_compare(last, zone.serial) >= 0:
                raise ValueError(
                    f"serial {zone.serial} does not advance past {last}"
                )
            self._deltas[(last, zone.serial)] = diff_zones(
                self._zones[last], zone
            )
        self._serials.append(zone.serial)
        self._zones[zone.serial] = zone
        while len(self._serials) > self.max_versions:
            dropped = self._serials.pop(0)
            del self._zones[dropped]
            if self._serials:
                self._deltas.pop((dropped, self._serials[0]), None)

    def deltas_between(self, old_serial: int, new_serial: int) -> Optional[List[ZoneDelta]]:
        """The consecutive delta chain, or None if out of window."""
        if old_serial not in self._zones or new_serial not in self._zones:
            return None
        start = self._serials.index(old_serial)
        end = self._serials.index(new_serial)
        if start > end:
            return None
        chain: List[ZoneDelta] = []
        for a, b in zip(self._serials[start:end], self._serials[start + 1 : end + 1]):
            chain.append(self._deltas[(a, b)])
        return chain


@dataclass
class IxfrResponse:
    """Outcome of an IXFR request."""

    kind: str  # "incremental", "full", or "current"
    records: List[ResourceRecord] = field(default_factory=list)
    deltas: List[ZoneDelta] = field(default_factory=list)

    @property
    def transferred_records(self) -> int:
        if self.kind == "incremental":
            return sum(d.size for d in self.deltas) + 2 * len(self.deltas) + 2
        return len(self.records)


class IxfrServer:
    """Serves IXFR out of a journal, falling back to full transfers."""

    def __init__(self, journal: IxfrJournal) -> None:
        self.journal = journal

    def _soa_record(self, zone: Zone) -> ResourceRecord:
        soa = zone.soa()
        assert soa is not None
        return soa

    def respond(self, client_serial: int) -> IxfrResponse:
        """Answer an IXFR for a client at *client_serial*."""
        latest = self.journal.latest
        if latest is None:
            raise TransferError("journal is empty")
        if client_serial == latest.serial:
            # Up to date: single SOA answer (RFC 1995 §2).
            return IxfrResponse(kind="current", records=[self._soa_record(latest)])
        chain = self.journal.deltas_between(client_serial, latest.serial)
        if chain is None:
            # Out of window: full zone, AXFR-style.
            soa = self._soa_record(latest)
            body = [r for r in latest.records if r is not soa]
            return IxfrResponse(kind="full", records=[soa] + body + [soa])
        # Incremental: the new SOA leads the stream (RFC 1995 §4).
        return IxfrResponse(
            kind="incremental", deltas=chain, records=[self._soa_record(latest)]
        )


def apply_deltas(
    zone: Zone, deltas: List[ZoneDelta], new_soa: ResourceRecord
) -> Zone:
    """Client side: apply a delta chain to a zone copy.

    *new_soa* is the target version's SOA record (the one leading the
    IXFR stream).  Raises :class:`TransferError` if a delta does not
    match the current content — the client must then fall back to a
    full transfer.
    """
    if new_soa.rrtype != RRType.SOA:
        raise TransferError("new_soa must be an SOA record")
    current = {r.canonical_wire(): r for r in zone.records if r.rrtype != RRType.SOA}
    expected_serial = zone.serial
    for delta in deltas:
        if delta.old_serial != expected_serial:
            raise TransferError(
                f"delta starts at {delta.old_serial}, zone is at {expected_serial}"
            )
        for record in delta.removed:
            wire = record.canonical_wire()
            if wire not in current:
                raise TransferError(
                    f"delta removes unknown record {record.to_text()[:60]}"
                )
            del current[wire]
        for record in delta.added:
            current[record.canonical_wire()] = record
        expected_serial = delta.new_serial
    assert isinstance(new_soa.rdata, SOA)
    if new_soa.rdata.serial != expected_serial:
        raise TransferError("delta chain does not reach the target serial")
    return Zone(zone.apex, [new_soa] + list(current.values()))
