"""Master-file (RFC 1035 §5) serialisation and parsing.

The study moves zone copies around as files (AXFR captures, CZDS and IANA
downloads), and the bitflip analysis (paper Fig 10) diffs the *textual*
zone representations.  The renderer emits one record per line; the parser
accepts that format back (plus comments/blank lines), round-tripping every
record type the root zone uses.
"""

from __future__ import annotations

import base64
from typing import Callable, Dict, List, Sequence

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name
from repro.dns import rdata as rd
from repro.dns.records import ResourceRecord
from repro.zone.zone import Zone


class ZoneFileError(ValueError):
    """Malformed zone file text."""


def render_zone_text(zone: Zone) -> str:
    """Render a zone as master-file text, SOA first, then canonical order.

    Deterministic output makes zone copies byte-comparable, which the
    bitflip detector relies on.
    """
    soa = zone.soa()
    assert soa is not None
    rest = [r for r in zone.records if r is not soa]
    rest.sort(key=lambda r: (r.name.canonical_key(), int(r.rrtype), r.rdata.canonical_wire()))
    lines = [soa.to_text()]
    lines.extend(r.to_text() for r in rest)
    return "\n".join(lines) + "\n"


# --- rdata text parsers ------------------------------------------------------


def _parse_a(fields: Sequence[str]) -> rd.Rdata:
    if len(fields) != 1:
        raise ZoneFileError(f"A rdata wants 1 field, got {fields}")
    return rd.A(fields[0])


def _parse_aaaa(fields: Sequence[str]) -> rd.Rdata:
    if len(fields) != 1:
        raise ZoneFileError(f"AAAA rdata wants 1 field, got {fields}")
    return rd.AAAA(fields[0])


def _parse_ns(fields: Sequence[str]) -> rd.Rdata:
    return rd.NS(Name.from_text(fields[0]))


def _parse_cname(fields: Sequence[str]) -> rd.Rdata:
    return rd.CNAME(Name.from_text(fields[0]))


def _parse_ptr(fields: Sequence[str]) -> rd.Rdata:
    return rd.PTR(Name.from_text(fields[0]))


def _parse_mx(fields: Sequence[str]) -> rd.Rdata:
    return rd.MX(int(fields[0]), Name.from_text(fields[1]))


def _parse_soa(fields: Sequence[str]) -> rd.Rdata:
    if len(fields) != 7:
        raise ZoneFileError(f"SOA rdata wants 7 fields, got {len(fields)}")
    return rd.SOA(
        Name.from_text(fields[0]),
        Name.from_text(fields[1]),
        *(int(f) for f in fields[2:]),
    )


def _parse_txt(fields: Sequence[str]) -> rd.Rdata:
    strings = []
    for f in fields:
        if len(f) >= 2 and f[0] == '"' and f[-1] == '"':
            f = f[1:-1]
        strings.append(f.encode("utf-8"))
    if not strings:
        raise ZoneFileError("TXT rdata needs at least one string")
    return rd.TXT(tuple(strings))


def _parse_ds(fields: Sequence[str]) -> rd.Rdata:
    return rd.DS(int(fields[0]), int(fields[1]), int(fields[2]), bytes.fromhex("".join(fields[3:])))


def _parse_dnskey(fields: Sequence[str]) -> rd.Rdata:
    return rd.DNSKEY(
        int(fields[0]), int(fields[1]), int(fields[2]),
        base64.b64decode("".join(fields[3:])),
    )


def _parse_rrsig(fields: Sequence[str]) -> rd.Rdata:
    if len(fields) < 9:
        raise ZoneFileError(f"RRSIG rdata wants >=9 fields, got {len(fields)}")
    covered_text = fields[0]
    if covered_text.upper().startswith("TYPE"):
        covered = int(covered_text[4:])
    else:
        covered = int(RRType.from_text(covered_text))
    return rd.RRSIG(
        type_covered=covered,
        algorithm=int(fields[1]),
        labels=int(fields[2]),
        original_ttl=int(fields[3]),
        expiration=int(fields[4]),
        inception=int(fields[5]),
        key_tag=int(fields[6]),
        signer=Name.from_text(fields[7]),
        signature=base64.b64decode("".join(fields[8:])),
    )


def _parse_nsec(fields: Sequence[str]) -> rd.Rdata:
    next_name = Name.from_text(fields[0])
    types = []
    for mnemonic in fields[1:]:
        if mnemonic.upper().startswith("TYPE"):
            types.append(int(mnemonic[4:]))
        else:
            types.append(int(RRType.from_text(mnemonic)))
    return rd.NSEC(next_name, tuple(types))


def _parse_zonemd(fields: Sequence[str]) -> rd.Rdata:
    return rd.ZONEMD(
        int(fields[0]), int(fields[1]), int(fields[2]),
        bytes.fromhex("".join(fields[3:])),
    )


_PARSERS: Dict[RRType, Callable[[Sequence[str]], rd.Rdata]] = {
    RRType.A: _parse_a,
    RRType.AAAA: _parse_aaaa,
    RRType.NS: _parse_ns,
    RRType.CNAME: _parse_cname,
    RRType.PTR: _parse_ptr,
    RRType.MX: _parse_mx,
    RRType.SOA: _parse_soa,
    RRType.TXT: _parse_txt,
    RRType.DS: _parse_ds,
    RRType.DNSKEY: _parse_dnskey,
    RRType.RRSIG: _parse_rrsig,
    RRType.NSEC: _parse_nsec,
    RRType.ZONEMD: _parse_zonemd,
}


def parse_record_line(line: str) -> ResourceRecord:
    """Parse one master-file line into a :class:`ResourceRecord`."""
    fields = line.split()
    if len(fields) < 5:
        raise ZoneFileError(f"record line too short: {line!r}")
    owner = Name.from_text(fields[0])
    try:
        ttl = int(fields[1])
    except ValueError:
        raise ZoneFileError(f"bad TTL in line: {line!r}") from None
    rrclass = RRClass.from_text(fields[2])
    rrtype = RRType.from_text(fields[3])
    parser = _PARSERS.get(rrtype)
    if parser is None:
        raise ZoneFileError(f"no parser for type {rrtype.name}")
    rdata = parser(fields[4:])
    return ResourceRecord(owner, rrtype, rrclass, ttl, rdata)


def parse_zone_text(text: str, apex: Name = None) -> Zone:
    """Parse master-file text produced by :func:`render_zone_text`."""
    records: List[ResourceRecord] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith(";"):
            continue
        try:
            records.append(parse_record_line(stripped))
        except ZoneFileError as exc:
            raise ZoneFileError(f"line {lineno}: {exc}") from None
    if not records:
        raise ZoneFileError("zone file contains no records")
    if apex is None:
        soa_owners = [r.name for r in records if r.rrtype == RRType.SOA]
        if not soa_owners:
            raise ZoneFileError("zone file has no SOA record")
        apex = soa_owners[0]
    return Zone(apex, records)
