"""SOA serial arithmetic (RFC 1982) and the root zone's serial convention.

The root zone uses ``YYYYMMDDNN`` serials with (usually) two publications
per day; serial comparisons must use sequence-space arithmetic to stay
correct across wraps.
"""

from __future__ import annotations

import time as _time

SERIAL_BITS = 32
SERIAL_MODULO = 1 << SERIAL_BITS
_HALF = 1 << (SERIAL_BITS - 1)


def serial_add(serial: int, increment: int) -> int:
    """RFC 1982 addition; *increment* must be in [0, 2^31 - 1]."""
    if not 0 <= increment <= _HALF - 1:
        raise ValueError(f"increment out of range: {increment}")
    return (serial + increment) % SERIAL_MODULO


def serial_compare(a: int, b: int) -> int:
    """RFC 1982 comparison: -1 if a < b, 0 if equal, +1 if a > b.

    Raises ``ValueError`` for the undefined case (distance exactly 2^31).
    """
    if not 0 <= a < SERIAL_MODULO or not 0 <= b < SERIAL_MODULO:
        raise ValueError("serials must be 32-bit unsigned")
    if a == b:
        return 0
    if (a < b and b - a < _HALF) or (a > b and a - b > _HALF):
        return -1
    if (a < b and b - a > _HALF) or (a > b and a - b < _HALF):
        return 1
    raise ValueError(f"comparison of {a} and {b} is undefined (RFC 1982 §3.2)")


def serial_for_day(ts: int, edition: int = 0) -> int:
    """Root-zone-style ``YYYYMMDDNN`` serial for a Unix timestamp.

    *edition* is the intra-day publication counter (the root publishes the
    zone roughly twice a day).
    """
    if not 0 <= edition <= 99:
        raise ValueError(f"edition out of range: {edition}")
    tm = _time.gmtime(ts)
    return (tm.tm_year * 10000 + tm.tm_mon * 100 + tm.tm_mday) * 100 + edition
