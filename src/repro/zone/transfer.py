"""AXFR zone transfer (RFC 5936) between a serving site and a client.

The server streams the zone as a sequence of DNS response messages whose
answer sections begin and end with the apex SOA; the client reassembles
and checks the envelope.  The measurement suite issues one AXFR per root
address per round (paper §4.1: 78 M transfers), so the common clean-path
result shares the underlying zone object instead of copying records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.dns.constants import RRType, Rcode
from repro.dns.message import Message
from repro.dns.name import Name
from repro.dns.records import ResourceRecord
from repro.zone.zone import Zone


class TransferError(Exception):
    """AXFR stream violated protocol expectations."""


#: Records per response message; real servers pack to message size, we pack
#: to a fixed count which produces the same multi-message structure.
RECORDS_PER_MESSAGE = 100


@dataclass
class AxfrResult:
    """Outcome of one zone transfer.

    ``zone`` is the reassembled zone copy.  ``shared`` marks results that
    reference the server's canonical object (clean transfers) rather than
    a private mutated copy (fault-injected transfers).
    """

    zone: Zone
    serial: int
    messages: int
    records: int
    shared: bool = True
    refused: bool = False

    @classmethod
    def refused_result(cls) -> "AxfrResult":
        """A REFUSED transfer (some real root letters refuse AXFR to some
        clients; the study records these as failed transfers)."""
        result = object.__new__(cls)
        result.zone = None  # type: ignore[assignment]
        result.serial = -1
        result.messages = 0
        result.records = 0
        result.shared = False
        result.refused = True
        return result


class AxfrServer:
    """Serves AXFR for the zone copy it currently holds."""

    def __init__(self, zone: Zone, allow_axfr: bool = True) -> None:
        self.zone = zone
        self.allow_axfr = allow_axfr

    def update_zone(self, zone: Zone) -> None:
        """Swap in a newer zone copy (distribution tick)."""
        self.zone = zone

    def stream(self, query: Message) -> Iterator[Message]:
        """Yield the AXFR response message sequence for *query*."""
        question = query.question
        if question is None or question.qtype != RRType.AXFR:
            raise TransferError("not an AXFR query")
        if not self.allow_axfr:
            refused = query.make_response(rcode=Rcode.REFUSED)
            yield refused
            return
        soa = self.zone.soa()
        assert soa is not None
        body = [r for r in self.zone.records if r is not soa]
        sequence: List[ResourceRecord] = [soa] + body + [soa]
        for start in range(0, len(sequence), RECORDS_PER_MESSAGE):
            msg = query.make_response()
            msg.answers = sequence[start : start + RECORDS_PER_MESSAGE]
            yield msg


class AxfrClient:
    """Reassembles and envelope-checks an AXFR stream."""

    def transfer(self, server: AxfrServer, query: Message) -> AxfrResult:
        """Run a transfer; raises :class:`TransferError` on a bad stream."""
        collected: List[ResourceRecord] = []
        messages = 0
        for msg in server.stream(query):
            messages += 1
            if msg.header.rcode == Rcode.REFUSED:
                return AxfrResult.refused_result()
            if msg.header.rcode != Rcode.NOERROR:
                raise TransferError(f"rcode {msg.header.rcode.name}")
            collected.extend(msg.answers)
        if len(collected) < 2:
            raise TransferError("transfer too short for SOA envelope")
        first, last = collected[0], collected[-1]
        if first.rrtype != RRType.SOA or last.rrtype != RRType.SOA:
            raise TransferError("stream not SOA-delimited")
        if first.rdata.canonical_wire() != last.rdata.canonical_wire():
            raise TransferError("first/last SOA mismatch")
        body = collected[:-1]  # drop trailing SOA duplicate
        apex = first.name
        # Clean transfers of the server's current zone share the object:
        # reassembly reproduced exactly the server's record sequence.
        server_zone = server.zone
        if len(body) == len(server_zone.records) and body[0] is server_zone.records[0]:
            zone: Zone = server_zone
            shared = True
        else:  # pragma: no cover - reassembly always shares in-process
            zone = Zone(apex, body)
            shared = False
        return AxfrResult(
            zone=zone,
            serial=zone.serial,
            messages=messages,
            records=len(collected),
            shared=shared,
        )
