"""The :class:`Zone` container: an ordered multiset of records with the
apex conveniences every other layer needs (serial, SOA, lookups).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.dns.constants import RRClass, RRType
from repro.dns.name import Name
from repro.dns.rdata import SOA
from repro.dns.records import ResourceRecord, RRset, group_rrsets


class Zone:
    """A zone: apex name plus records (including RRSIG/NSEC/ZONEMD).

    The record list preserves construction order; canonical order is
    derived on demand by the DNSSEC/ZONEMD layers.
    """

    def __init__(self, apex: Name, records: Iterable[ResourceRecord]) -> None:
        self.apex = apex
        self.records: List[ResourceRecord] = list(records)
        if self.soa() is None:
            raise ValueError("zone must contain an apex SOA record")

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[ResourceRecord]:
        return iter(self.records)

    def soa(self) -> Optional[ResourceRecord]:
        """The apex SOA record (None only during construction checks)."""
        for rec in self.records:
            if rec.name == self.apex and rec.rrtype == RRType.SOA:
                return rec
        return None

    @property
    def serial(self) -> int:
        """The SOA serial of this zone copy."""
        soa = self.soa()
        assert soa is not None and isinstance(soa.rdata, SOA)
        return soa.rdata.serial

    def rrsets(self) -> List[RRset]:
        """All RRsets in first-seen order."""
        return group_rrsets(self.records)

    def find_rrset(
        self, name: Name, rrtype: RRType, rrclass: RRClass = RRClass.IN
    ) -> Optional[RRset]:
        """The RRset at (name, type, class), or None."""
        matching = [
            r
            for r in self.records
            if r.name == name and r.rrtype == rrtype and r.rrclass == rrclass
        ]
        return RRset(matching) if matching else None

    def names(self) -> List[Name]:
        """Distinct owner names in canonical order."""
        seen: Dict[Name, None] = {}
        for rec in self.records:
            seen.setdefault(rec.name, None)
        return sorted(seen.keys(), key=lambda n: n.canonical_key())

    def delegations(self) -> List[Name]:
        """Names with NS RRsets below the apex (the TLDs, for the root)."""
        out: Dict[Name, None] = {}
        for rec in self.records:
            if rec.rrtype == RRType.NS and rec.name != self.apex:
                out.setdefault(rec.name, None)
        return sorted(out.keys(), key=lambda n: n.canonical_key())

    def copy(self) -> "Zone":
        """Shallow copy (records are immutable, the list is fresh)."""
        return Zone(self.apex, list(self.records))

    def replace_record(self, index: int, record: ResourceRecord) -> None:
        """In-place record replacement (used by fault injection)."""
        if not 0 <= index < len(self.records):
            raise IndexError(index)
        self.records[index] = record
        # Content changed: drop the memoised digest-cache fingerprint.
        self.__dict__.pop("_content_fingerprint", None)

    def stats(self) -> Tuple[int, int, int]:
        """(records, rrsets, owner names) — quick size fingerprint."""
        return (len(self.records), len(self.rrsets()), len(self.names()))
