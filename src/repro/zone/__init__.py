"""Root zone machinery: the zone container, a root-zone builder following
the real zone's structure and the ZONEMD roll-out timeline, master-file
serialisation, AXFR transfer, distribution to server sites, and the
CZDS/IANA download channels the paper cross-checks (§7).
"""

from repro.zone.serial import serial_compare, serial_add, serial_for_day
from repro.zone.zone import Zone
from repro.zone.rootzone import RootZoneBuilder, ZONEMD_PLACEHOLDER_DATE, ZONEMD_VALIDATABLE_DATE
from repro.zone.zonefile import parse_zone_text, render_zone_text
from repro.zone.transfer import AxfrServer, AxfrClient, AxfrResult
from repro.zone.ixfr import IxfrJournal, IxfrServer, ZoneDelta, apply_deltas, diff_zones
from repro.zone.distribution import ZoneDistributor, SitePublication
from repro.zone.sources import CzdsSource, IanaSource, ZoneDownload

__all__ = [
    "serial_compare",
    "serial_add",
    "serial_for_day",
    "Zone",
    "RootZoneBuilder",
    "ZONEMD_PLACEHOLDER_DATE",
    "ZONEMD_VALIDATABLE_DATE",
    "parse_zone_text",
    "render_zone_text",
    "AxfrServer",
    "AxfrClient",
    "AxfrResult",
    "IxfrJournal",
    "IxfrServer",
    "ZoneDelta",
    "apply_deltas",
    "diff_zones",
    "ZoneDistributor",
    "SitePublication",
    "CzdsSource",
    "IanaSource",
    "ZoneDownload",
]
