"""repro — a reproduction of "The Roots Go Deep: Measuring '.' Under
Change" (IMC 2024).

The package simulates the DNS root server system and everything the
paper's measurement study needs around it — DNS/DNSSEC/ZONEMD, an
anycast routing fabric, the 13 letters' deployments, active vantage
points, passive ISP/IXP traces, fault injection — and runs the paper's
analysis pipeline on top.

Quickstart::

    from repro.core import RootStudy, StudyConfig
    results = RootStudy(StudyConfig.quick()).run()

See README.md for the tour, DESIGN.md for the architecture and
substitution table, and EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
